#include "dram/geometry.hpp"

#include <gtest/gtest.h>

namespace mb::dram {
namespace {

TEST(UbankConfig, ConventionalBankIsOneByOne) {
  UbankConfig c{1, 1};
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.ubanksPerBank(), 1);
}

TEST(UbankConfig, ValidRangeIsPow2UpTo16) {
  for (int nw : {1, 2, 4, 8, 16}) {
    for (int nb : {1, 2, 4, 8, 16}) {
      EXPECT_TRUE((UbankConfig{nw, nb}.valid()));
    }
  }
  EXPECT_FALSE((UbankConfig{3, 1}.valid()));
  EXPECT_FALSE((UbankConfig{0, 1}.valid()));
  EXPECT_FALSE((UbankConfig{32, 1}.valid()));
  EXPECT_FALSE((UbankConfig{1, 32}.valid()));
}

TEST(Geometry, DefaultIsValid) {
  Geometry g;
  EXPECT_TRUE(g.valid());
}

TEST(Geometry, UbankRowShrinksWithNw) {
  Geometry g;
  g.ubank = {4, 2};
  EXPECT_EQ(g.ubankRowBytes(), 2 * kKiB);  // 8 KB / 4
  EXPECT_EQ(g.linesPerUbankRow(), 32);
  EXPECT_EQ(g.ubanksPerBank(), 8);
}

TEST(Geometry, TotalUbanksMultiplies) {
  Geometry g;  // 16 ch x 2 rk x 8 bk
  g.ubank = {2, 8};
  EXPECT_EQ(g.totalUbanks(), 16LL * 2 * 8 * 16);
}

TEST(Geometry, OpenRowBytesGrowWithNbNotNw) {
  // §IV: nB multiplies open rows at full size; nW shrinks each row, so the
  // total simultaneously-open bytes depend on nB only.
  Geometry base;
  Geometry moreNw = base;
  moreNw.ubank = {16, 1};
  Geometry moreNb = base;
  moreNb.ubank = {1, 16};
  EXPECT_EQ(base.maxOpenRowBytes(), moreNw.maxOpenRowBytes());
  EXPECT_EQ(moreNb.maxOpenRowBytes(), 16 * base.maxOpenRowBytes());
}

TEST(Geometry, RowsPerUbankConsistentWithCapacity) {
  Geometry g;
  g.ubank = {2, 8};
  const auto totalBytes =
      g.rowsPerUbank() * g.ubankRowBytes() * g.totalUbanks();
  EXPECT_EQ(totalBytes, g.capacityBytes);
}

TEST(Geometry, InvalidWhenNotPowerOfTwo) {
  Geometry g;
  g.channels = 3;
  EXPECT_FALSE(g.valid());
}

TEST(Geometry, InvalidWhenRowNotDivisible) {
  Geometry g;
  g.rowBytes = 96;  // not a power of two
  EXPECT_FALSE(g.valid());
}

TEST(Geometry, PaperScaleSystem) {
  // §VI-A: 16 channels, 64 GB; LPDDR-TSI: 8 ranks per channel.
  Geometry g;
  g.channels = 16;
  g.ranksPerChannel = 8;
  g.capacityBytes = 64 * kGiB;
  g.ubank = {16, 16};
  EXPECT_TRUE(g.valid());
  EXPECT_EQ(g.totalUbanks(), 16LL * 8 * 8 * 256);
  EXPECT_EQ(g.ubankRowBytes(), 512);
}

}  // namespace
}  // namespace mb::dram
