#include "interface/phy.hpp"

#include <gtest/gtest.h>

namespace mb::interface {
namespace {

TEST(PhyModel, Ddr3PcbIsPinLimited) {
  const auto m = PhyModel::make(PhyKind::Ddr3Pcb);
  EXPECT_EQ(m.channels, 8);  // ~1600 pins (§VI-D)
  EXPECT_EQ(m.ranksPerChannel, 2);
  EXPECT_EQ(m.timing.tAA, ns(14));
  EXPECT_EQ(m.timing.tBURST, ns(5));  // 12.8 GB/s DIMM (§II)
  EXPECT_EQ(m.timing.tRTRS, ns(2));
  EXPECT_DOUBLE_EQ(m.energy.ioPerBit, 20.0);
}

TEST(PhyModel, Ddr3TsiDropsPinLimitKeepsPhyCost) {
  const auto m = PhyModel::make(PhyKind::Ddr3Tsi);
  EXPECT_EQ(m.channels, 16);
  EXPECT_EQ(m.ranksPerChannel, 1);  // one 8-die-stack rank (§VI-D)
  EXPECT_EQ(m.timing.tAA, ns(12));
  EXPECT_EQ(m.timing.tBURST, ns(4));
  // I/O energy between PCB (20) and LPDDR (4): the DDR3 PHY survives.
  EXPECT_GT(m.energy.ioPerBit, 4.0);
  EXPECT_LT(m.energy.ioPerBit, 20.0);
}

TEST(PhyModel, LpddrTsiIsTheEfficientEndpoint) {
  const auto m = PhyModel::make(PhyKind::LpddrTsi);
  EXPECT_EQ(m.channels, 16);
  EXPECT_EQ(m.ranksPerChannel, 4);  // die = rank; 4 x 8Gb dies per channel
  EXPECT_EQ(m.timing.tAA, ns(12));
  EXPECT_EQ(m.timing.tRTRS, 0);
  EXPECT_DOUBLE_EQ(m.energy.ioPerBit, 4.0);
  EXPECT_DOUBLE_EQ(m.energy.rdwrPerBit, 4.0);
  // No DLL/ODT: lowest static PHY power of the three.
  EXPECT_LT(m.energy.staticPowerPerRankWatts,
            PhyModel::make(PhyKind::Ddr3Pcb).energy.staticPowerPerRankWatts);
}

TEST(PhyModel, BankParallelismOrderingDrivesFig14) {
  // Banks per channel: DDR3-TSI (8) < DDR3-PCB (16) < LPDDR-TSI (32).
  auto banks = [](PhyKind k) { return PhyModel::make(k).ranksPerChannel * 8; };
  EXPECT_EQ(banks(PhyKind::Ddr3Tsi), 8);
  EXPECT_EQ(banks(PhyKind::Ddr3Pcb), 16);
  EXPECT_EQ(banks(PhyKind::LpddrTsi), 32);
}

TEST(PhyModel, AllTimingsValid) {
  for (auto kind :
       {PhyKind::Ddr3Pcb, PhyKind::Ddr3Tsi, PhyKind::LpddrTsi, PhyKind::Hmc}) {
    EXPECT_TRUE(PhyModel::make(kind).timing.valid()) << phyKindName(kind);
  }
}

TEST(PhyModel, HmcTradesLatencyAndStaticPowerForLinks) {
  // The extension models the paper's §VII characterization: serial links
  // add latency and always-on power relative to TSI interposer wires.
  const auto hmc = PhyModel::make(PhyKind::Hmc);
  const auto tsi = PhyModel::make(PhyKind::LpddrTsi);
  EXPECT_GT(hmc.linkLatency, 0);
  EXPECT_EQ(tsi.linkLatency, 0);
  EXPECT_GT(hmc.energy.staticPowerPerRankWatts, tsi.energy.staticPowerPerRankWatts);
  EXPECT_GT(hmc.energy.ioPerBit, tsi.energy.ioPerBit);
  EXPECT_EQ(hmc.channels, 16);
}

TEST(PhyModel, Names) {
  EXPECT_EQ(phyKindName(PhyKind::Ddr3Pcb), "DDR3-PCB");
  EXPECT_EQ(phyKindName(PhyKind::Ddr3Tsi), "DDR3-TSI");
  EXPECT_EQ(phyKindName(PhyKind::LpddrTsi), "LPDDR-TSI");
  EXPECT_EQ(phyKindName(PhyKind::Hmc), "HMC");
}

TEST(PhyModel, ChannelBandwidthMatchesBurst) {
  // 64 B per tBURST must equal the stated channel bandwidth.
  for (auto kind : {PhyKind::Ddr3Pcb, PhyKind::Ddr3Tsi, PhyKind::LpddrTsi}) {
    const auto m = PhyModel::make(kind);
    const double gbps = 64.0 / (toNs(m.timing.tBURST));  // GB/s
    if (kind == PhyKind::Ddr3Pcb) {
      EXPECT_NEAR(gbps, 12.8, 0.01);
    } else {
      EXPECT_NEAR(gbps, 16.0, 0.01);
    }
  }
}

}  // namespace
}  // namespace mb::interface
