// Behavioral tests for memory-controller mechanisms that the basic
// controller tests do not cover: write-drain hysteresis, the
// scheduler-visible window with overflow, PAR-BS inter-thread fairness,
// and the minimalist-open policy in situ.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/event_queue.hpp"
#include "common/rng.hpp"
#include "mc/controller.hpp"

namespace mb::mc {
namespace {

dram::Geometry testGeometry() {
  dram::Geometry g;
  g.channels = 1;
  g.ranksPerChannel = 2;
  g.banksPerRank = 8;
  g.capacityBytes = 4 * kGiB;
  return g;
}

class ControllerBehaviorTest : public ::testing::Test {
 protected:
  void build(ControllerConfig cfg = {}) {
    geom_ = testGeometry();
    map_.emplace(core::AddressMap::pageInterleaved(geom_));
    cfg.enableTimingCheck = true;
    cfg.refreshEnabled = false;
    mc_.emplace(0, geom_, dram::TimingParams::tsi(), dram::EnergyParams::lpddrTsi(),
                *map_, cfg, eq_);
  }

  Tick read(std::uint64_t addr, ThreadId thread = 0) {
    MemRequest r;
    r.addr = addr;
    r.thread = thread;
    const size_t idx = done_.size();
    done_.push_back(-1);
    r.onComplete = [this, idx](Tick when) { done_[idx] = when; };
    mc_->enqueue(std::move(r));
    return static_cast<Tick>(idx);
  }

  void write(std::uint64_t addr, ThreadId thread = 0) {
    MemRequest r;
    r.addr = addr;
    r.write = true;
    r.thread = thread;
    mc_->enqueue(std::move(r));
  }

  std::uint64_t lineOf(int bank, std::int64_t row, std::int64_t col = 0) {
    core::DramAddress da;
    da.bank = bank;
    da.row = row;
    da.column = col;
    return map_->compose(da);
  }

  EventQueue eq_;
  dram::Geometry geom_;
  std::optional<core::AddressMap> map_;
  std::optional<MemoryController> mc_;
  std::vector<Tick> done_;
};

TEST_F(ControllerBehaviorTest, WritesDrainEventuallyEvenWithoutReads) {
  build();
  for (int i = 0; i < 10; ++i) write(lineOf(i % 8, i));
  eq_.run();
  EXPECT_EQ(mc_->outstanding(), 0);
  EXPECT_EQ(mc_->energyMeter().casOps(), 10);
}

TEST_F(ControllerBehaviorTest, WriteHighWatermarkForcesDrainUnderReadLoad) {
  ControllerConfig cfg;
  cfg.writeHighWatermark = 8;
  cfg.writeLowWatermark = 2;
  build(cfg);
  // Saturate with reads while pushing writes past the watermark: the drain
  // must interleave and finish everything.
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    read(lineOf(static_cast<int>(rng.nextBounded(8)), i + 100));
    write(lineOf(static_cast<int>(rng.nextBounded(8)), i + 500));
  }
  eq_.run();
  EXPECT_EQ(mc_->outstanding(), 0);
  for (Tick t : done_) EXPECT_GE(t, 0);
}

TEST_F(ControllerBehaviorTest, OverflowWindowServesBeyondQueueDepth) {
  ControllerConfig cfg;
  cfg.queueDepth = 4;  // tiny visible window
  build(cfg);
  for (int i = 0; i < 40; ++i) read(lineOf(i % 8, i));
  EXPECT_GT(mc_->outstanding(), 4);
  eq_.run();
  EXPECT_EQ(mc_->outstanding(), 0);
  for (Tick t : done_) EXPECT_GE(t, 0);
}

TEST_F(ControllerBehaviorTest, ParBsBoundsHogPenaltyOnLightThread) {
  // Thread 0 floods one bank with row hits; thread 1 sends one conflicting
  // request. Under PAR-BS the batch boundary must let thread 1 through
  // before the entire flood drains.
  ControllerConfig cfg;
  cfg.scheduler = SchedulerKind::ParBs;
  build(cfg);
  for (int i = 0; i < 30; ++i) read(lineOf(0, 1, i % 32), /*thread=*/0);
  const auto lightIdx = static_cast<size_t>(read(lineOf(0, 2), /*thread=*/1));
  eq_.run();
  // The light request must not be the globally last one serviced.
  Tick maxDone = 0;
  for (Tick t : done_) maxDone = std::max(maxDone, t);
  EXPECT_LT(done_[lightIdx], maxDone);
}

TEST_F(ControllerBehaviorTest, MinimalistOpenClosesAfterBudget) {
  ControllerConfig cfg;
  cfg.pagePolicy = core::PolicyKind::MinimalistOpen;
  build(cfg);
  // Five hits to one row, spaced out so each triggers a speculative
  // decision; after the budget (4) the policy closes the row, so a later
  // access to the same row is a miss, not a hit.
  for (int i = 0; i < 6; ++i) {
    read(lineOf(0, 1, i));
    eq_.run();
    eq_.runUntil(eq_.now() + us(1));
  }
  const auto s = mc_->stats();
  EXPECT_GT(s.rowMisses, 1);  // the re-activation after the budget closes
  EXPECT_GT(s.rowHits, 2);
}

TEST_F(ControllerBehaviorTest, PerBankRefreshKeepsServingOtherBanks) {
  ControllerConfig cfg;
  cfg.refreshEnabled = true;
  cfg.perBankRefresh = true;
  cfg.enableTimingCheck = true;
  geom_ = testGeometry();
  map_.emplace(core::AddressMap::pageInterleaved(geom_));
  mc_.emplace(0, geom_, dram::TimingParams::tsi(), dram::EnergyParams::lpddrTsi(),
              *map_, cfg, eq_);
  // Run past several refresh intervals with steady traffic.
  for (int burst = 0; burst < 30; ++burst) {
    for (int b = 0; b < 4; ++b) read(lineOf(b, burst));
    eq_.run();
    eq_.runUntil(eq_.now() + us(3));
  }
  EXPECT_EQ(mc_->outstanding(), 0);
  EXPECT_GT(mc_->stats().refreshes, 0);
  for (Tick t : done_) EXPECT_GE(t, 0);
}

TEST_F(ControllerBehaviorTest, CommandTraceObservesEveryCommit) {
  build();
  int acts = 0, cas = 0, pres = 0;
  mc_->commandTrace = [&](DramCommand cmd, const core::DramAddress&, Tick) {
    if (cmd == DramCommand::Act) ++acts;
    if (cmd == DramCommand::Read || cmd == DramCommand::Write) ++cas;
    if (cmd == DramCommand::Pre) ++pres;
  };
  read(lineOf(0, 1));
  read(lineOf(0, 2));  // conflict: PRE + ACT + RD
  eq_.run();
  EXPECT_EQ(acts, 2);
  EXPECT_EQ(cas, 2);
  EXPECT_EQ(pres, 1);
}

}  // namespace
}  // namespace mb::mc
