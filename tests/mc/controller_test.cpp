#include "mc/controller.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "ckpt/restore.hpp"
#include "ckpt/serialize.hpp"
#include "common/event_queue.hpp"
#include "common/rng.hpp"

namespace mb::mc {
namespace {

dram::Geometry testGeometry(int nW = 1, int nB = 1) {
  dram::Geometry g;
  g.channels = 1;
  g.ranksPerChannel = 2;
  g.banksPerRank = 8;
  g.ubank = {nW, nB};
  g.capacityBytes = 4 * kGiB;
  return g;
}

class ControllerTest : public ::testing::Test {
 protected:
  void build(int nW = 1, int nB = 1,
             core::PolicyKind policy = core::PolicyKind::Open,
             SchedulerKind sched = SchedulerKind::ParBs, int iB = -1) {
    geom_ = testGeometry(nW, nB);
    map_.emplace(iB < 0 ? core::AddressMap::pageInterleaved(geom_)
                        : core::AddressMap(geom_, iB));
    ControllerConfig cfg;
    cfg.pagePolicy = policy;
    cfg.scheduler = sched;
    cfg.enableTimingCheck = true;
    cfg.refreshEnabled = false;
    mc_.emplace(0, geom_, dram::TimingParams::tsi(), dram::EnergyParams::lpddrTsi(),
                *map_, cfg, eq_);
  }

  /// Enqueue a read; returns the index of its completion slot in done_.
  size_t read(std::uint64_t addr, ThreadId thread = 0) {
    MemRequest r;
    r.addr = addr;
    r.thread = thread;
    const size_t idx = done_.size();
    done_.push_back(-1);
    r.onComplete = [this, idx](Tick when) { done_[idx] = when; };
    mc_->enqueue(std::move(r));
    return idx;
  }

  void write(std::uint64_t addr, ThreadId thread = 0) {
    MemRequest r;
    r.addr = addr;
    r.write = true;
    r.thread = thread;
    mc_->enqueue(std::move(r));
  }

  /// Address of (row, column) within channel 0, bank 0, μbank 0, rank 0.
  std::uint64_t rowAddr(std::int64_t row, std::int64_t col = 0) {
    core::DramAddress da;
    da.row = row;
    da.column = col;
    return map_->compose(da);
  }

  EventQueue eq_;
  dram::Geometry geom_;
  std::optional<core::AddressMap> map_;
  std::optional<MemoryController> mc_;
  std::vector<Tick> done_;
};

TEST_F(ControllerTest, SingleReadCompletesWithMissLatency) {
  build();
  const auto t = dram::TimingParams::tsi();
  const size_t r = read(rowAddr(1));
  eq_.run();
  // Empty bank: ACT + tRCD + CAS + tAA + tBURST.
  EXPECT_EQ(done_[r], t.tRCD + t.tAA + t.tBURST);
  const auto s = mc_->stats();
  EXPECT_EQ(s.reads, 1);
  EXPECT_EQ(s.rowMisses, 1);
  EXPECT_EQ(s.rowHits, 0);
}

TEST_F(ControllerTest, SecondReadSameRowIsRowHit) {
  build();
  read(rowAddr(1, 0));
  eq_.run();
  read(rowAddr(1, 5));
  eq_.run();
  const auto s = mc_->stats();
  EXPECT_EQ(s.rowHits, 1);
  EXPECT_EQ(s.rowMisses, 1);
}

TEST_F(ControllerTest, ConflictRequiresPrecharge) {
  build();
  read(rowAddr(1));
  eq_.run();
  const size_t r = read(rowAddr(2));
  eq_.run();
  const auto s = mc_->stats();
  EXPECT_EQ(s.rowConflicts, 1);
  // Conflict latency is at least tRP + tRCD + tAA + tBURST after arrival,
  // and the PRE itself had to wait for tRAS from the first activate.
  EXPECT_GT(done_[r], dram::TimingParams::tsi().conflictLatency());
}

TEST_F(ControllerTest, ClosePolicyTurnsConflictIntoMiss) {
  build(1, 1, core::PolicyKind::Close);
  read(rowAddr(1));
  eq_.run();
  // Let the idle precharge happen, then access another row.
  eq_.runUntil(eq_.now() + us(1));
  read(rowAddr(2));
  eq_.run();
  const auto s = mc_->stats();
  EXPECT_EQ(s.rowConflicts, 0);
  EXPECT_EQ(s.rowMisses, 2);
}

TEST_F(ControllerTest, OpenPolicyKeepsRowForLateHit) {
  build(1, 1, core::PolicyKind::Open);
  read(rowAddr(1, 0));
  eq_.run();
  eq_.runUntil(eq_.now() + us(1));
  read(rowAddr(1, 9));
  eq_.run();
  EXPECT_EQ(mc_->stats().rowHits, 1);
}

TEST_F(ControllerTest, PerfectPolicyMatchesBestStaticEitherWay) {
  // Hit case: behaves like open.
  build(1, 1, core::PolicyKind::Perfect);
  read(rowAddr(1, 0));
  eq_.run();
  eq_.runUntil(eq_.now() + us(1));
  const size_t hit = read(rowAddr(1, 3));
  eq_.run();
  EXPECT_EQ(mc_->stats().rowHits, 1);
  const Tick hitLatency = done_[hit];
  EXPECT_GT(hitLatency, 0);

  // Conflict case: behaves like close (counts as a miss, not a conflict).
  build(1, 1, core::PolicyKind::Perfect);
  done_.clear();
  read(rowAddr(1));
  eq_.run();
  eq_.runUntil(eq_.now() + us(1));
  read(rowAddr(2));
  eq_.run();
  const auto s = mc_->stats();
  EXPECT_EQ(s.rowConflicts, 0);
  EXPECT_EQ(s.rowMisses, 2);
}

TEST_F(ControllerTest, SpeculationStatsTrackOutcomes) {
  build(1, 1, core::PolicyKind::Open);
  read(rowAddr(1, 0));
  eq_.run();
  read(rowAddr(1, 1));  // same row: "open" was right
  eq_.run();
  read(rowAddr(2, 0));  // different row: "open" was wrong
  eq_.run();
  const auto s = mc_->stats();
  EXPECT_EQ(s.specDecisions, 2);
  EXPECT_EQ(s.specCorrect, 1);
}

TEST_F(ControllerTest, WriteForwardingServesReadFromWriteQueue) {
  build();
  write(rowAddr(3));
  const size_t r = read(rowAddr(3));
  eq_.run();
  const auto s = mc_->stats();
  EXPECT_EQ(s.forwardedReads, 1);
  EXPECT_GE(done_[r], 0);
}

TEST_F(ControllerTest, WriteCoalescingDropsDuplicates) {
  build();
  write(rowAddr(4));
  write(rowAddr(4));
  eq_.run();
  // Both writes are received, but the duplicate coalesces into one buffered
  // entry: exactly one column access reaches the DRAM.
  EXPECT_EQ(mc_->stats().writes, 2);
  EXPECT_EQ(mc_->energyMeter().casOps(), 1);
}

TEST_F(ControllerTest, ReadsPrioritizedOverBufferedWrites) {
  build();
  // One write sits buffered; a read to a *different bank* should complete
  // without waiting behind a write drain (the write may have opened its own
  // bank first, so the read only pays command-bus and tRRD spacing).
  write(rowAddr(5));
  core::DramAddress da;
  da.bank = 1;
  da.row = 6;
  const size_t r = read(map_->compose(da));
  eq_.run();
  const auto t = dram::TimingParams::tsi();
  EXPECT_LE(done_[r], t.tRRD + t.tRCD + t.tAA + t.tBURST + t.tCMD);
  EXPECT_EQ(mc_->outstanding(), 0);  // the write drained once reads were done
}

TEST_F(ControllerTest, ManyRandomRequestsAllCompleteUnderChecker) {
  build(2, 8, core::PolicyKind::Open, SchedulerKind::ParBs);
  Rng rng(5);
  std::vector<size_t> idx;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t addr = (rng.nextU64() % (1ull << 30)) & ~63ull;
    if (rng.nextBool(0.3)) {
      write(addr);
    } else {
      idx.push_back(read(addr, static_cast<ThreadId>(rng.nextBounded(4))));
    }
  }
  eq_.run();
  for (const size_t i : idx) EXPECT_GE(done_[i], 0) << "read " << i << " never completed";
  EXPECT_EQ(mc_->outstanding(), 0);
}

TEST_F(ControllerTest, UbanksRemoveConflictsBetweenInterleavedRows) {
  // Two alternating rows that live in the same bank at (1,1) but in
  // different μbanks at (1,8): the conflict count must collapse.
  build(1, 1);
  for (int i = 0; i < 10; ++i) {
    read(rowAddr(1, i));
    read(rowAddr(9, i));  // row 9: same bank, different row at (1,1)
    eq_.run();
  }
  // One conflict per alternation (the scheduler serves the row hit first,
  // then the other row evicts it).
  const auto conflictsBase = mc_->stats().rowConflicts;
  EXPECT_GE(conflictsBase, 10);

  build(1, 8);
  done_.clear();
  // Compose addresses against the new map: rows 1 and 9 of μbank 0 and the
  // equivalent lines now map to distinct μbanks.
  for (int i = 0; i < 10; ++i) {
    core::DramAddress a;
    a.row = 1;
    a.column = i;
    core::DramAddress b;
    b.row = 1;
    b.ubank = 1;
    b.column = i;
    read(map_->compose(a));
    read(map_->compose(b));
    eq_.run();
  }
  EXPECT_EQ(mc_->stats().rowConflicts, 0);
  EXPECT_EQ(mc_->stats().rowHits, 18);
}

TEST_F(ControllerTest, QueueOccupancyReflectsBacklog) {
  build();
  for (int i = 0; i < 20; ++i) read(rowAddr(i * 7 + 1));
  eq_.run();
  mc_->finalize(eq_.now());
  EXPECT_GT(mc_->stats().avgQueueOccupancy, 1.0);
}

TEST_F(ControllerTest, EnergyMeterCountsActsAndCas) {
  build();
  read(rowAddr(1, 0));
  read(rowAddr(1, 1));
  eq_.run();
  const auto& m = mc_->energyMeter();
  EXPECT_EQ(m.activations(), 1);
  EXPECT_EQ(m.casOps(), 2);
  EXPECT_DOUBLE_EQ(m.actPre(), 30000.0);  // one full 8 KB row
}

TEST_F(ControllerTest, UbankActivationEnergyScalesDown) {
  build(8, 1);
  core::DramAddress a;
  a.row = 1;
  read(map_->compose(a));
  eq_.run();
  EXPECT_DOUBLE_EQ(mc_->energyMeter().actPre(), 30000.0 / 8.0);
}

TEST_F(ControllerTest, RefreshHappensWhenEnabled) {
  geom_ = testGeometry();
  map_.emplace(core::AddressMap::pageInterleaved(geom_));
  ControllerConfig cfg;
  cfg.refreshEnabled = true;
  cfg.enableTimingCheck = true;
  mc_.emplace(0, geom_, dram::TimingParams::tsi(), dram::EnergyParams::lpddrTsi(),
              *map_, cfg, eq_);
  // Activity far past several refresh intervals.
  for (int i = 0; i < 5; ++i) {
    read(rowAddr(i + 1));
    eq_.runUntil(eq_.now() + us(20));
  }
  eq_.run();
  EXPECT_GT(mc_->stats().refreshes, 0);
}

TEST_F(ControllerTest, FcfsAndFrFcfsBothDrainEverything) {
  for (auto kind : {SchedulerKind::Fcfs, SchedulerKind::FrFcfs}) {
    build(1, 1, core::PolicyKind::Open, kind);
    done_.clear();
    std::vector<size_t> idx;
    Rng rng(11);
    for (int i = 0; i < 100; ++i)
      idx.push_back(read((rng.nextU64() % (1ull << 28)) & ~63ull));
    eq_.run();
    for (const size_t i : idx) EXPECT_GE(done_[i], 0);
  }
}

TEST_F(ControllerTest, LatencyStatsPopulated) {
  build();
  read(rowAddr(1));
  eq_.run();
  mc_->finalize(eq_.now());
  const auto s = mc_->stats();
  const auto t = dram::TimingParams::tsi();
  EXPECT_NEAR(s.avgReadLatencyNs, toNs(t.tRCD + t.tAA + t.tBURST), 0.01);
}

// ---- Kick-event bookkeeping ----------------------------------------------

TEST_F(ControllerTest, KickBookkeepingStaysBoundedUnderIdleThenBurst) {
  build();
  std::size_t maxLive = 0;
  for (int cycle = 0; cycle < 16; ++cycle) {
    // Burst across conflicting rows of one bank, then go fully idle. Every
    // conflict arms a future wake-up; the bookkeeping must not accumulate
    // entries across cycles.
    for (int i = 0; i < 6; ++i) read(rowAddr(cycle * 8 + i));
    while (eq_.step()) {
      const auto& ks = mc_->pendingKickEvents();
      maxLive = std::max(maxLive, ks.size());
      // Sorted ascending with no duplicate ticks: armKick dedupes per tick.
      for (std::size_t k = 1; k < ks.size(); ++k)
        ASSERT_LT(ks[k - 1].at, ks[k].at);
    }
    // Fully drained: every armed wake-up fired and erased itself.
    ASSERT_LE(mc_->pendingKickEvents().size(), 1u) << "cycle " << cycle;
  }
  EXPECT_TRUE(mc_->pendingKickEvents().empty());
  EXPECT_EQ(mc_->liveCompletionCount(), 0u);
  // Transient entries are bounded by the burst depth, not by run history.
  EXPECT_LE(maxLive, 6u);
}

TEST_F(ControllerTest, KickAndCompletionStateSurviveCheckpointRoundTrip) {
  build();
  for (int i = 0; i < 6; ++i) read(rowAddr(i));  // conflicting rows → wake-ups
  // Step to a mid-flight point where at least one wake-up is armed.
  while (mc_->pendingKickEvents().empty() && eq_.step()) {
  }
  ASSERT_FALSE(mc_->pendingKickEvents().empty());
  const Tick snapTick = eq_.now();
  std::vector<Tick> snapKicks;
  for (const auto& e : mc_->pendingKickEvents()) snapKicks.push_back(e.at);
  const std::size_t snapCompl = mc_->liveCompletionCount();
  std::vector<std::size_t> pendingIdx;
  for (std::size_t i = 0; i < done_.size(); ++i)
    if (done_[i] < 0) pendingIdx.push_back(i);

  ckpt::Writer w;
  mc_->save(w);

  // Finish the original run; the requests still in flight at the snapshot
  // are the reference the restored controller must reproduce.
  eq_.run();
  std::vector<Tick> refDone;
  for (const std::size_t i : pendingIdx) refDone.push_back(done_[i]);
  std::sort(refDone.begin(), refDone.end());

  // Fresh controller restored from the snapshot at the capture tick.
  EventQueue eq2;
  eq2.restoreClock(snapTick);
  ControllerConfig cfg;
  cfg.pagePolicy = core::PolicyKind::Open;
  cfg.scheduler = SchedulerKind::ParBs;
  cfg.enableTimingCheck = true;
  cfg.refreshEnabled = false;
  MemoryController mc2(0, geom_, dram::TimingParams::tsi(),
                       dram::EnergyParams::lpddrTsi(), *map_, cfg, eq2);
  std::vector<Tick> gotDone;
  mc2.completionFactory = [&gotDone](std::uint64_t, CoreId) {
    return [&gotDone](Tick when) { gotDone.push_back(when); };
  };
  ckpt::Reader r(w.str());
  mc2.load(r);
  ASSERT_TRUE(r.ok());
  ckpt::EventRestorer er;
  mc2.reschedule(er);
  er.replay();

  // Exactly the saved wake-ups came back — no stale or duplicate entries.
  ASSERT_EQ(mc2.pendingKickEvents().size(), snapKicks.size());
  for (std::size_t i = 0; i < snapKicks.size(); ++i)
    EXPECT_EQ(mc2.pendingKickEvents()[i].at, snapKicks[i]);
  EXPECT_EQ(mc2.liveCompletionCount(), snapCompl);

  eq2.run();
  std::sort(gotDone.begin(), gotDone.end());
  EXPECT_EQ(gotDone, refDone);
  EXPECT_TRUE(mc2.pendingKickEvents().empty());
  EXPECT_EQ(mc2.liveCompletionCount(), 0u);
  EXPECT_EQ(mc2.outstanding(), 0);
}

TEST_F(ControllerTest, StaleKickEntryDiesOnRestoreIntoItsPast) {
  build();
  for (int i = 0; i < 6; ++i) read(rowAddr(i));
  while (mc_->pendingKickEvents().empty() && eq_.step()) {
  }
  ASSERT_FALSE(mc_->pendingKickEvents().empty());
  ckpt::Writer w;
  mc_->save(w);
  const Tick lastKick = mc_->pendingKickEvents().back().at;

  // Restoring into a clock beyond the saved wake-ups makes them stale; the
  // re-arm must trip the event queue's past-check rather than silently
  // resurrect them at a tick that already elapsed.
  EventQueue eq2;
  eq2.restoreClock(lastKick + 1);
  ControllerConfig cfg;
  cfg.pagePolicy = core::PolicyKind::Open;
  cfg.scheduler = SchedulerKind::ParBs;
  cfg.enableTimingCheck = true;
  cfg.refreshEnabled = false;
  MemoryController mc2(0, geom_, dram::TimingParams::tsi(),
                       dram::EnergyParams::lpddrTsi(), *map_, cfg, eq2);
  mc2.completionFactory = [](std::uint64_t, CoreId) { return [](Tick) {}; };
  ckpt::Reader r(w.str());
  mc2.load(r);
  ASSERT_TRUE(r.ok());
  ckpt::EventRestorer er;
  mc2.reschedule(er);
  EXPECT_DEATH(er.replay(), "check failed");
}

}  // namespace
}  // namespace mb::mc
