#include "mc/scheduler.hpp"

#include <gtest/gtest.h>

namespace mb::mc {
namespace {

Candidate cand(int idx, std::uint64_t id, ThreadId thread, Tick arrival, Tick earliest,
               bool rowHit) {
  Candidate c;
  c.queueIndex = idx;
  c.id = id;
  c.thread = thread;
  c.arrival = arrival;
  c.earliestIssue = earliest;
  c.rowHit = rowHit;
  return c;
}

MemRequest req(std::uint64_t id, ThreadId thread, Tick arrival) {
  MemRequest r;
  r.id = id;
  r.thread = thread;
  r.arrival = arrival;
  return r;
}

TEST(SchedulerFactory, CreatesAllKinds) {
  for (auto kind :
       {SchedulerKind::Fcfs, SchedulerKind::FrFcfs, SchedulerKind::ParBs}) {
    auto s = makeScheduler(kind);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind(), kind);
  }
}

TEST(Fcfs, PicksOldestIssuable) {
  FcfsScheduler s;
  std::vector<Candidate> cands{
      cand(0, 1, 0, 100, 0, true),
      cand(1, 2, 0, 50, 0, false),
      cand(2, 3, 0, 75, 0, true),
  };
  EXPECT_EQ(s.pick(cands, 0), 1);
}

TEST(Fcfs, SkipsFutureCandidates) {
  FcfsScheduler s;
  std::vector<Candidate> cands{
      cand(0, 1, 0, 10, 500, false),
      cand(1, 2, 0, 90, 0, false),
  };
  EXPECT_EQ(s.pick(cands, 100), 1);
}

TEST(Fcfs, ReturnsMinusOneWhenNothingIssuable) {
  FcfsScheduler s;
  std::vector<Candidate> cands{cand(0, 1, 0, 10, 500, false)};
  EXPECT_EQ(s.pick(cands, 100), -1);
  EXPECT_EQ(s.pick(cands, 500), 0);
}

TEST(FrFcfs, PrefersRowHitOverAge) {
  FrFcfsScheduler s;
  std::vector<Candidate> cands{
      cand(0, 1, 0, 10, 0, false),  // older conflict
      cand(1, 2, 0, 90, 0, true),   // younger hit
  };
  EXPECT_EQ(s.pick(cands, 100), 1);
}

TEST(FrFcfs, AgeBreaksTiesAmongHits) {
  FrFcfsScheduler s;
  std::vector<Candidate> cands{
      cand(0, 1, 0, 90, 0, true),
      cand(1, 2, 0, 10, 0, true),
  };
  EXPECT_EQ(s.pick(cands, 100), 1);
}

TEST(ParBs, MarkedBeatsUnmarkedRowHit) {
  ParBsScheduler s(/*markingCap=*/1);
  // Queue: thread 0 has an old request (gets marked), thread 1's second
  // request arrives after batch formation and is unmarked.
  const auto r1 = req(1, 0, 10);
  s.onEnqueue(r1);
  std::vector<Candidate> round1{cand(0, 1, 0, 10, 0, false)};
  EXPECT_EQ(s.pick(round1, 100), 0);  // forms batch, picks marked
  EXPECT_TRUE(s.isMarked(1));

  const auto r2 = req(2, 1, 20);
  s.onEnqueue(r2);
  std::vector<Candidate> round2{
      cand(0, 1, 0, 10, 0, false),  // marked conflict
      cand(1, 2, 1, 20, 0, true),   // unmarked hit
  };
  EXPECT_EQ(s.pick(round2, 100), 0);
}

TEST(ParBs, NewBatchFormsWhenMarkedDrains) {
  ParBsScheduler s(2);
  const auto r1 = req(1, 0, 10);
  s.onEnqueue(r1);
  std::vector<Candidate> c1{cand(0, 1, 0, 10, 0, false)};
  (void)s.pick(c1, 100);
  EXPECT_TRUE(s.isMarked(1));
  s.onDequeue(r1);
  EXPECT_FALSE(s.isMarked(1));

  const auto r2 = req(2, 1, 20);
  s.onEnqueue(r2);
  std::vector<Candidate> c2{cand(0, 2, 1, 20, 0, false)};
  (void)s.pick(c2, 100);
  EXPECT_TRUE(s.isMarked(2));
}

TEST(ParBs, MarkingCapLimitsPerThread) {
  ParBsScheduler s(2);
  for (std::uint64_t i = 1; i <= 5; ++i) s.onEnqueue(req(i, 0, static_cast<Tick>(i)));
  std::vector<Candidate> cands;
  for (std::uint64_t i = 1; i <= 5; ++i)
    cands.push_back(cand(static_cast<int>(i - 1), i, 0, static_cast<Tick>(i), 0, false));
  (void)s.pick(cands, 100);
  int marked = 0;
  for (std::uint64_t i = 1; i <= 5; ++i) marked += s.isMarked(i) ? 1 : 0;
  EXPECT_EQ(marked, 2);
  EXPECT_TRUE(s.isMarked(1));  // oldest first
  EXPECT_TRUE(s.isMarked(2));
}

TEST(ParBs, ShortestJobThreadRankedFirst) {
  ParBsScheduler s(5);
  // Thread 0: three requests; thread 1: one request. All arrive before the
  // batch forms; thread 1 (fewer marked) should be served first among
  // equally-old, equally-row-state candidates.
  for (std::uint64_t i = 1; i <= 3; ++i) s.onEnqueue(req(i, 0, 10));
  s.onEnqueue(req(4, 1, 10));
  std::vector<Candidate> cands{
      cand(0, 1, 0, 10, 0, false),
      cand(1, 2, 0, 10, 0, false),
      cand(2, 3, 0, 10, 0, false),
      cand(3, 4, 1, 10, 0, false),
  };
  EXPECT_EQ(s.pick(cands, 100), 3);
}

TEST(ParBs, RowHitStillWinsWithinBatch) {
  ParBsScheduler s(5);
  s.onEnqueue(req(1, 0, 10));
  s.onEnqueue(req(2, 0, 20));
  std::vector<Candidate> cands{
      cand(0, 1, 0, 10, 0, false),
      cand(1, 2, 0, 20, 0, true),
  };
  EXPECT_EQ(s.pick(cands, 100), 1);
}

TEST(ParBs, EmptyCandidatesReturnsMinusOne) {
  ParBsScheduler s;
  std::vector<Candidate> cands;
  EXPECT_EQ(s.pick(cands, 0), -1);
}

TEST(SchedulerKindName, AllNamed) {
  EXPECT_EQ(schedulerKindName(SchedulerKind::Fcfs), "FCFS");
  EXPECT_EQ(schedulerKindName(SchedulerKind::FrFcfs), "FR-FCFS");
  EXPECT_EQ(schedulerKindName(SchedulerKind::ParBs), "PAR-BS");
}

// ---- Tie-break determinism -----------------------------------------------
//
// When candidates are indistinguishable under a policy's whole preference
// chain, the FIRST candidate in scan order must win — a strict `better`
// predicate never replaces the running best on a tie. This anchors bitwise
// reproducibility: the controller builds candidates in queue order, so the
// tie-break is "oldest queue position", independent of container or
// optimization-level accidents.

TEST(TieBreaks, FcfsEqualArrivalKeepsFirstScanned) {
  FcfsScheduler s;
  std::vector<Candidate> cands{
      cand(0, 7, 0, 50, 0, false),
      cand(1, 3, 1, 50, 0, true),   // same arrival, different everything else
      cand(2, 9, 2, 50, 0, false),
  };
  EXPECT_EQ(s.pick(cands, 100), 0);
}

TEST(TieBreaks, FrFcfsEqualRowHitEqualArrivalKeepsFirstScanned) {
  FrFcfsScheduler s;
  std::vector<Candidate> allHits{
      cand(0, 1, 0, 50, 0, true),
      cand(1, 2, 1, 50, 0, true),
  };
  EXPECT_EQ(s.pick(allHits, 100), 0);
  std::vector<Candidate> allMisses{
      cand(0, 1, 0, 50, 0, false),
      cand(1, 2, 1, 50, 0, false),
  };
  EXPECT_EQ(s.pick(allMisses, 100), 0);
}

TEST(TieBreaks, ParBsFullyTiedKeepsFirstScanned) {
  ParBsScheduler s(5);
  // Same thread, same arrival, same row state: marked flags and thread rank
  // are identical, so the full chain ties and index 0 must win.
  s.onEnqueue(req(1, 0, 50));
  s.onEnqueue(req(2, 0, 50));
  std::vector<Candidate> cands{
      cand(0, 1, 0, 50, 0, true),
      cand(1, 2, 0, 50, 0, true),
  };
  EXPECT_EQ(s.pick(cands, 100), 0);
}

// ---- pickPair consistency -------------------------------------------------
//
// The fused single-scan pickPair() must return exactly what the base-class
// reference (two independent pick() calls) returns, on every scheduler and
// on randomized candidate sets that mix ready, near-future, and far-future
// earliestIssue values. A qualified Scheduler::pickPair call bypasses the
// virtual dispatch and runs the reference implementation.

std::vector<Candidate> randomCands(std::uint64_t seed, int n, Tick now) {
  std::vector<Candidate> cands;
  // Tiny xorshift so the test controls its own reproducibility.
  std::uint64_t x = seed * 2654435761u + 1;
  auto next = [&x](std::uint64_t bound) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x % bound;
  };
  for (int i = 0; i < n; ++i) {
    Tick earliest;
    switch (next(4)) {
      case 0: earliest = now - static_cast<Tick>(next(1000)); break;  // ready
      case 1: earliest = now + 1 + static_cast<Tick>(next(500)); break;
      case 2: earliest = now + 100000 + static_cast<Tick>(next(100000)); break;
      default: earliest = kTickNever / 2 + 1; break;  // beyond gate horizon
    }
    cands.push_back(cand(i, static_cast<std::uint64_t>(i) + 1,
                         static_cast<ThreadId>(next(8)),
                         static_cast<Tick>(next(5000)), earliest,
                         next(2) == 0));
  }
  return cands;
}

TEST(PickPair, MatchesTwoPickReferenceOnAllSchedulers) {
  for (auto kind :
       {SchedulerKind::Fcfs, SchedulerKind::FrFcfs, SchedulerKind::ParBs}) {
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
      auto fused = makeScheduler(kind);
      auto reference = makeScheduler(kind);
      const Tick now = 10000;
      auto candsA = randomCands(seed, static_cast<int>(seed % 60) + 1, now);
      auto candsB = candsA;
      // Feed both schedulers the same queue view (ParBs batch state).
      for (const auto& c : candsA) {
        fused->onEnqueue(req(c.id, c.thread, c.arrival));
        reference->onEnqueue(req(c.id, c.thread, c.arrival));
      }
      const auto got = fused->pickPair(candsA, now);
      const auto want = reference->Scheduler::pickPair(candsB, now);
      EXPECT_EQ(got.issuable, want.issuable)
          << schedulerKindName(kind) << " seed " << seed;
      EXPECT_EQ(got.overall, want.overall)
          << schedulerKindName(kind) << " seed " << seed;
      // pickPair must also stamp ParBs marked flags identically to pick().
      for (std::size_t i = 0; i < candsA.size(); ++i)
        EXPECT_EQ(candsA[i].marked, candsB[i].marked)
            << schedulerKindName(kind) << " seed " << seed << " cand " << i;
    }
  }
}

TEST(PickPair, IssuableMatchesPickAndOverallIgnoresReadiness) {
  FrFcfsScheduler s;
  // Row-hit stream is ready now; a conflicting older request is ready just
  // after `now` — the gate scenario: issuable = the hit, overall = the hit
  // too (row hits outrank age in FR-FCFS), so overall==issuable here...
  std::vector<Candidate> cands{
      cand(0, 1, 0, 10, 150, false),  // older, not ready
      cand(1, 2, 0, 90, 0, true),     // younger hit, ready
  };
  auto p = s.pickPair(cands, 100);
  EXPECT_EQ(p.issuable, 1);
  EXPECT_EQ(p.overall, 1);
  // ...whereas under FCFS (age only) the overall favourite is the older,
  // not-yet-ready request: exactly the pair the priority gate inspects.
  FcfsScheduler fcfs;
  auto p2 = fcfs.pickPair(cands, 100);
  EXPECT_EQ(p2.issuable, 1);
  EXPECT_EQ(p2.overall, 0);
}

}  // namespace
}  // namespace mb::mc
