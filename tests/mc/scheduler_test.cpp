#include "mc/scheduler.hpp"

#include <gtest/gtest.h>

namespace mb::mc {
namespace {

Candidate cand(int idx, std::uint64_t id, ThreadId thread, Tick arrival, Tick earliest,
               bool rowHit) {
  Candidate c;
  c.queueIndex = idx;
  c.id = id;
  c.thread = thread;
  c.arrival = arrival;
  c.earliestIssue = earliest;
  c.rowHit = rowHit;
  return c;
}

MemRequest req(std::uint64_t id, ThreadId thread, Tick arrival) {
  MemRequest r;
  r.id = id;
  r.thread = thread;
  r.arrival = arrival;
  return r;
}

TEST(SchedulerFactory, CreatesAllKinds) {
  for (auto kind :
       {SchedulerKind::Fcfs, SchedulerKind::FrFcfs, SchedulerKind::ParBs}) {
    auto s = makeScheduler(kind);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind(), kind);
  }
}

TEST(Fcfs, PicksOldestIssuable) {
  FcfsScheduler s;
  std::vector<Candidate> cands{
      cand(0, 1, 0, 100, 0, true),
      cand(1, 2, 0, 50, 0, false),
      cand(2, 3, 0, 75, 0, true),
  };
  EXPECT_EQ(s.pick(cands, 0), 1);
}

TEST(Fcfs, SkipsFutureCandidates) {
  FcfsScheduler s;
  std::vector<Candidate> cands{
      cand(0, 1, 0, 10, 500, false),
      cand(1, 2, 0, 90, 0, false),
  };
  EXPECT_EQ(s.pick(cands, 100), 1);
}

TEST(Fcfs, ReturnsMinusOneWhenNothingIssuable) {
  FcfsScheduler s;
  std::vector<Candidate> cands{cand(0, 1, 0, 10, 500, false)};
  EXPECT_EQ(s.pick(cands, 100), -1);
  EXPECT_EQ(s.pick(cands, 500), 0);
}

TEST(FrFcfs, PrefersRowHitOverAge) {
  FrFcfsScheduler s;
  std::vector<Candidate> cands{
      cand(0, 1, 0, 10, 0, false),  // older conflict
      cand(1, 2, 0, 90, 0, true),   // younger hit
  };
  EXPECT_EQ(s.pick(cands, 100), 1);
}

TEST(FrFcfs, AgeBreaksTiesAmongHits) {
  FrFcfsScheduler s;
  std::vector<Candidate> cands{
      cand(0, 1, 0, 90, 0, true),
      cand(1, 2, 0, 10, 0, true),
  };
  EXPECT_EQ(s.pick(cands, 100), 1);
}

TEST(ParBs, MarkedBeatsUnmarkedRowHit) {
  ParBsScheduler s(/*markingCap=*/1);
  // Queue: thread 0 has an old request (gets marked), thread 1's second
  // request arrives after batch formation and is unmarked.
  const auto r1 = req(1, 0, 10);
  s.onEnqueue(r1);
  std::vector<Candidate> round1{cand(0, 1, 0, 10, 0, false)};
  EXPECT_EQ(s.pick(round1, 100), 0);  // forms batch, picks marked
  EXPECT_TRUE(s.isMarked(1));

  const auto r2 = req(2, 1, 20);
  s.onEnqueue(r2);
  std::vector<Candidate> round2{
      cand(0, 1, 0, 10, 0, false),  // marked conflict
      cand(1, 2, 1, 20, 0, true),   // unmarked hit
  };
  EXPECT_EQ(s.pick(round2, 100), 0);
}

TEST(ParBs, NewBatchFormsWhenMarkedDrains) {
  ParBsScheduler s(2);
  const auto r1 = req(1, 0, 10);
  s.onEnqueue(r1);
  std::vector<Candidate> c1{cand(0, 1, 0, 10, 0, false)};
  (void)s.pick(c1, 100);
  EXPECT_TRUE(s.isMarked(1));
  s.onDequeue(r1);
  EXPECT_FALSE(s.isMarked(1));

  const auto r2 = req(2, 1, 20);
  s.onEnqueue(r2);
  std::vector<Candidate> c2{cand(0, 2, 1, 20, 0, false)};
  (void)s.pick(c2, 100);
  EXPECT_TRUE(s.isMarked(2));
}

TEST(ParBs, MarkingCapLimitsPerThread) {
  ParBsScheduler s(2);
  for (std::uint64_t i = 1; i <= 5; ++i) s.onEnqueue(req(i, 0, static_cast<Tick>(i)));
  std::vector<Candidate> cands;
  for (std::uint64_t i = 1; i <= 5; ++i)
    cands.push_back(cand(static_cast<int>(i - 1), i, 0, static_cast<Tick>(i), 0, false));
  (void)s.pick(cands, 100);
  int marked = 0;
  for (std::uint64_t i = 1; i <= 5; ++i) marked += s.isMarked(i) ? 1 : 0;
  EXPECT_EQ(marked, 2);
  EXPECT_TRUE(s.isMarked(1));  // oldest first
  EXPECT_TRUE(s.isMarked(2));
}

TEST(ParBs, ShortestJobThreadRankedFirst) {
  ParBsScheduler s(5);
  // Thread 0: three requests; thread 1: one request. All arrive before the
  // batch forms; thread 1 (fewer marked) should be served first among
  // equally-old, equally-row-state candidates.
  for (std::uint64_t i = 1; i <= 3; ++i) s.onEnqueue(req(i, 0, 10));
  s.onEnqueue(req(4, 1, 10));
  std::vector<Candidate> cands{
      cand(0, 1, 0, 10, 0, false),
      cand(1, 2, 0, 10, 0, false),
      cand(2, 3, 0, 10, 0, false),
      cand(3, 4, 1, 10, 0, false),
  };
  EXPECT_EQ(s.pick(cands, 100), 3);
}

TEST(ParBs, RowHitStillWinsWithinBatch) {
  ParBsScheduler s(5);
  s.onEnqueue(req(1, 0, 10));
  s.onEnqueue(req(2, 0, 20));
  std::vector<Candidate> cands{
      cand(0, 1, 0, 10, 0, false),
      cand(1, 2, 0, 20, 0, true),
  };
  EXPECT_EQ(s.pick(cands, 100), 1);
}

TEST(ParBs, EmptyCandidatesReturnsMinusOne) {
  ParBsScheduler s;
  std::vector<Candidate> cands;
  EXPECT_EQ(s.pick(cands, 0), -1);
}

TEST(SchedulerKindName, AllNamed) {
  EXPECT_EQ(schedulerKindName(SchedulerKind::Fcfs), "FCFS");
  EXPECT_EQ(schedulerKindName(SchedulerKind::FrFcfs), "FR-FCFS");
  EXPECT_EQ(schedulerKindName(SchedulerKind::ParBs), "PAR-BS");
}

}  // namespace
}  // namespace mb::mc
