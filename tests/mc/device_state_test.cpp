#include "mc/device_state.hpp"

#include <gtest/gtest.h>

namespace mb::mc {
namespace {

dram::Geometry smallGeometry(int nW = 1, int nB = 1) {
  dram::Geometry g;
  g.channels = 1;
  g.ranksPerChannel = 2;
  g.banksPerRank = 2;
  g.ubank = {nW, nB};
  g.capacityBytes = 4 * kGiB;
  return g;
}

core::DramAddress addr(int rank, int bank, int ubank, std::int64_t row) {
  core::DramAddress da;
  da.rank = rank;
  da.bank = bank;
  da.ubank = ubank;
  da.row = row;
  return da;
}

class ChannelStateTest : public ::testing::Test {
 protected:
  ChannelStateTest() : ch_(smallGeometry(2, 2), dram::TimingParams::tsi()) {
    ch_.refreshEnabled = false;
  }
  ChannelState ch_;
  const dram::TimingParams t_ = dram::TimingParams::tsi();
};

TEST_F(ChannelStateTest, FreshBankAcceptsImmediateAct) {
  EXPECT_EQ(ch_.earliestAct(addr(0, 0, 0, 5), 0), 0);
}

TEST_F(ChannelStateTest, ActOpensRow) {
  const auto a = addr(0, 0, 0, 5);
  ch_.commitAct(a, 0);
  EXPECT_TRUE(ch_.ubank(a).rowOpen());
  EXPECT_EQ(ch_.ubank(a).openRow, 5);
}

TEST_F(ChannelStateTest, CasWaitsForTrcd) {
  const auto a = addr(0, 0, 0, 5);
  ch_.commitAct(a, 0);
  EXPECT_GE(ch_.earliestCas(a, false, 0), t_.tRCD);
}

TEST_F(ChannelStateTest, PreWaitsForTras) {
  const auto a = addr(0, 0, 0, 5);
  ch_.commitAct(a, 0);
  EXPECT_GE(ch_.earliestPre(a, 0), t_.tRAS);
}

TEST_F(ChannelStateTest, ActAfterPreWaitsForTrp) {
  const auto a = addr(0, 0, 0, 5);
  ch_.commitAct(a, 0);
  ch_.commitPre(a, t_.tRAS);
  EXPECT_FALSE(ch_.ubank(a).rowOpen());
  EXPECT_GE(ch_.earliestAct(a, t_.tRAS), t_.tRAS + t_.tRP);
}

TEST_F(ChannelStateTest, SameRankActsSpacedByTrrd) {
  ch_.commitAct(addr(0, 0, 0, 1), 0);
  EXPECT_GE(ch_.earliestAct(addr(0, 1, 0, 2), 0), t_.tRRD);
}

TEST_F(ChannelStateTest, DifferentRanksDoNotShareTrrd) {
  ch_.commitAct(addr(0, 0, 0, 1), 0);
  // Only the command-bus slot separates ACTs to different ranks.
  EXPECT_EQ(ch_.earliestAct(addr(1, 0, 0, 2), 0), t_.tCMD);
}

TEST_F(ChannelStateTest, FawLimitsFifthActivate) {
  // Four activates at the tRRD rate, alternating μbanks of a rank.
  Tick at = 0;
  const core::DramAddress a[4] = {addr(0, 0, 0, 1), addr(0, 0, 1, 1),
                                  addr(0, 0, 2, 1), addr(0, 0, 3, 1)};
  for (int i = 0; i < 4; ++i) {
    at = ch_.earliestAct(a[i], at);
    ch_.commitAct(a[i], at);
  }
  // 4 ACTs at 0, 6, 12, 18 ns; the 5th must wait until 0 + tFAW = 30 ns.
  const auto fifth = addr(0, 1, 0, 1);
  EXPECT_GE(ch_.earliestAct(fifth, at), t_.tFAW);
}

TEST_F(ChannelStateTest, CasReservesDataBus) {
  const auto a = addr(0, 0, 0, 5);
  const auto b = addr(0, 1, 0, 7);
  ch_.commitAct(a, 0);
  ch_.commitAct(b, t_.tRRD);
  const Tick casA = ch_.earliestCas(a, false, t_.tRCD);
  const Tick endA = ch_.commitCas(a, false, casA);
  EXPECT_EQ(endA, casA + t_.tAA + t_.tBURST);
  // The second CAS's data must start after the first burst ends.
  const Tick casB = ch_.earliestCas(b, false, casA);
  EXPECT_GE(casB + t_.tAA, endA);
  const Tick endB = ch_.commitCas(b, false, casB);
  EXPECT_GE(endB, endA + t_.tBURST);
}

TEST_F(ChannelStateTest, WriteToReadTurnaroundOnSameRank) {
  const auto a = addr(0, 0, 0, 5);
  const auto b = addr(0, 1, 0, 7);
  ch_.commitAct(a, 0);
  ch_.commitAct(b, t_.tRRD);
  const Tick wr = ch_.earliestCas(a, true, t_.tRCD);
  const Tick wrEnd = ch_.commitCas(a, true, wr);
  const Tick rd = ch_.earliestCas(b, false, wr);
  EXPECT_GE(rd, wrEnd + t_.tWTR);
}

TEST_F(ChannelStateTest, ReadToPrechargeRespectsTrtp) {
  const auto a = addr(0, 0, 0, 5);
  ch_.commitAct(a, 0);
  const Tick cas = ch_.earliestCas(a, false, t_.tRCD);
  ch_.commitCas(a, false, cas);
  EXPECT_GE(ch_.earliestPre(a, cas), cas + t_.tRTP);
}

TEST_F(ChannelStateTest, WriteRecoveryBeforePrecharge) {
  const auto a = addr(0, 0, 0, 5);
  ch_.commitAct(a, 0);
  const Tick cas = ch_.earliestCas(a, true, t_.tRCD);
  const Tick dataEnd = ch_.commitCas(a, true, cas);
  EXPECT_GE(ch_.earliestPre(a, cas), dataEnd + t_.tWR);
}

TEST_F(ChannelStateTest, UbanksOfOneBankHoldIndependentRows) {
  const auto u0 = addr(0, 0, 0, 5);
  const auto u3 = addr(0, 0, 3, 9);
  ch_.commitAct(u0, 0);
  ch_.commitAct(u3, t_.tRRD);
  EXPECT_EQ(ch_.ubank(u0).openRow, 5);
  EXPECT_EQ(ch_.ubank(u3).openRow, 9);
}

TEST_F(ChannelStateTest, CommandBusSerializesCommands) {
  ch_.commitAct(addr(0, 0, 0, 1), 0);
  EXPECT_GE(ch_.cmdBusFreeAt(), t_.tCMD);
  EXPECT_GE(ch_.earliestAct(addr(1, 0, 0, 1), 0), t_.tCMD);
}

TEST(ChannelStateRefresh, RefreshClosesRowsAndBlocksRank) {
  auto g = smallGeometry(1, 1);
  const auto t = dram::TimingParams::tsi();
  ChannelState ch(g, t);
  core::DramAddress a;
  a.rank = 0;
  a.bank = 0;
  a.ubank = 0;
  a.row = 3;
  ch.commitAct(a, 0);
  int refreshes = 0;
  // Jump past the first due time.
  const Tick due = ch.nextRefreshDue();
  EXPECT_LT(due, kTickNever);
  EXPECT_TRUE(ch.maybeRefresh(due, [&](int, int) { ++refreshes; }));
  EXPECT_EQ(refreshes, 1);
  EXPECT_FALSE(ch.ubank(a).rowOpen());
  EXPECT_GE(ch.earliestAct(a, due), due + t.tRFC);
}

TEST(ChannelStateRefresh, DisabledRefreshNeverDue) {
  auto g = smallGeometry(1, 1);
  ChannelState ch(g, dram::TimingParams::tsi());
  ch.refreshEnabled = false;
  EXPECT_EQ(ch.nextRefreshDue(), kTickNever);
  EXPECT_FALSE(ch.maybeRefresh(kSecond, nullptr));
}

TEST(ChannelStateRefresh, PerBankRefreshBlocksOnlyOneBank) {
  auto g = smallGeometry(1, 1);
  const auto t = dram::TimingParams::tsi();
  ChannelState ch(g, t);
  ch.perBankRefresh = true;
  const Tick due = ch.nextRefreshDue();
  ASSERT_LT(due, kTickNever);
  EXPECT_TRUE(ch.maybeRefresh(due, nullptr));
  // Bank 0 of the refreshed rank is blocked for tRFCpb; bank 1 is free.
  // (Which rank was due depends on the stagger; probe both banks of each.)
  int blockedBanks = 0;
  for (int rank = 0; rank < g.ranksPerChannel; ++rank) {
    for (int bank = 0; bank < g.banksPerRank; ++bank) {
      if (ch.earliestAct(addr(rank, bank, 0, 1), due) >= due + t.tRFCpb / 2)
        ++blockedBanks;
    }
  }
  EXPECT_EQ(blockedBanks, 1);
}

TEST(ChannelStateRefresh, PerBankRefreshRotatesThroughBanks) {
  auto g = smallGeometry(1, 1);
  const auto t = dram::TimingParams::tsi();
  ChannelState ch(g, t);
  ch.perBankRefresh = true;
  // Drive enough due times to rotate through rank 0's two banks.
  Tick now = ch.rankAt(0).nextRefreshAt;
  EXPECT_EQ(ch.rankAt(0).nextRefreshBank, 0);
  ch.maybeRefresh(now, nullptr);
  const int afterFirst = ch.rankAt(0).nextRefreshBank;
  now = ch.rankAt(0).nextRefreshAt;
  ch.maybeRefresh(now, nullptr);
  EXPECT_NE(ch.rankAt(0).nextRefreshBank, afterFirst);
}

TEST(ChannelStateRefresh, PerBankPeriodIsShorter) {
  // Per-bank mode refreshes banks-per-rank times as often (same total
  // refresh work), so consecutive due times are tREFI / banks apart.
  auto g = smallGeometry(1, 1);
  const auto t = dram::TimingParams::tsi();
  ChannelState ch(g, t);
  ch.perBankRefresh = true;
  const Tick first = ch.rankAt(0).nextRefreshAt;
  ch.maybeRefresh(first, nullptr);
  EXPECT_EQ(ch.rankAt(0).nextRefreshAt - first, t.tREFI / g.banksPerRank);
}

TEST(ChannelStateRefresh, RanksRefreshStaggered) {
  auto g = smallGeometry(1, 1);
  const auto t = dram::TimingParams::tsi();
  ChannelState ch(g, t);
  // Rank 0 is due at tREFI; rank 1 half a period later.
  EXPECT_TRUE(ch.maybeRefresh(t.tREFI, nullptr));
  EXPECT_EQ(ch.rankAt(0).nextRefreshAt, 2 * t.tREFI);
  EXPECT_GT(ch.rankAt(1).nextRefreshAt, t.tREFI);
}

TEST_F(ChannelStateTest, DataBusUtilizationAccumulates) {
  const auto a = addr(0, 0, 0, 5);
  ch_.commitAct(a, 0);
  const Tick cas = ch_.earliestCas(a, false, t_.tRCD);
  const Tick end = ch_.commitCas(a, false, cas);
  EXPECT_NEAR(ch_.dataBusUtilization(end),
              static_cast<double>(t_.tBURST) / static_cast<double>(end), 1e-12);
}

}  // namespace
}  // namespace mb::mc
