// RequestArena: differential property test against the retired
// unique_ptr-queue representation, generation-tag staleness death tests, and
// a slot-churn test sized so an AddressSanitizer build of this suite would
// surface any use-after-free in the recycling path.
#include "mc/request_arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace mb::mc {
namespace {

struct Payload {
  std::uint64_t id = 0;
  std::uint64_t addr = 0;
  bool write = false;
};

// The controller's pre-arena representation: queues of owning pointers. The
// property test drives both representations through the same random program
// of admissions, retirements, and mid-queue erases (the write-forwarding
// eraseFrom path erased from any position, not just the front) and demands
// identical observable queue contents at every step.
struct Reference {
  std::deque<std::unique_ptr<Payload>> q;
};

TEST(RequestArenaTest, DifferentialAgainstUniquePtrQueues) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 20260808ull}) {
    Rng rng(seed);
    RequestArena<Payload> arena;
    std::deque<ReqHandle> handles;
    Reference ref;
    std::uint64_t nextId = 1;

    for (int step = 0; step < 4000; ++step) {
      const int op = static_cast<int>(rng.nextBounded(10));
      if (op < 5 || handles.empty()) {
        // Admit: alloc + push_back, mirroring enqueue().
        Payload p;
        p.id = nextId++;
        p.addr = rng.nextU64() & 0xffffffull;
        p.write = rng.nextBool(0.3);
        ref.q.push_back(std::make_unique<Payload>(p));
        handles.push_back(arena.alloc(std::move(p)));
      } else if (op < 8) {
        // Retire the front (CAS service order).
        ref.q.pop_front();
        arena.free(handles.front());
        handles.pop_front();
      } else {
        // Erase from an arbitrary position — the write-hit eraseFrom path
        // (a forwarded read retires a buffered write mid-queue).
        const std::size_t i = rng.nextBounded(handles.size());
        ref.q.erase(ref.q.begin() + static_cast<std::ptrdiff_t>(i));
        arena.free(handles[i]);
        handles.erase(handles.begin() + static_cast<std::ptrdiff_t>(i));
      }

      ASSERT_EQ(handles.size(), ref.q.size());
      ASSERT_EQ(arena.liveCount(), handles.size());
      // Spot-check a pseudo-random element each step plus full sweep
      // every 256 steps: contents must match the reference exactly.
      if (!handles.empty()) {
        const std::size_t i = rng.nextBounded(handles.size());
        const Payload& a = arena.get(handles[i]);
        const Payload& b = *ref.q[i];
        ASSERT_EQ(a.id, b.id);
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(a.write, b.write);
      }
      if ((step & 255) == 0) {
        for (std::size_t i = 0; i < handles.size(); ++i)
          ASSERT_EQ(arena.get(handles[i]).id, ref.q[i]->id);
      }
    }
    // The pool never grows past the concurrency high-water mark.
    EXPECT_LE(arena.capacity(), 4000u);
  }
}

TEST(RequestArenaTest, SlotReuseRecyclesIndices) {
  RequestArena<Payload> arena;
  const ReqHandle a = arena.alloc(Payload{1, 0, false});
  arena.free(a);
  const ReqHandle b = arena.alloc(Payload{2, 0, false});
  EXPECT_EQ(a.idx, b.idx);      // same slot recycled...
  EXPECT_NE(a.gen, b.gen);      // ...under a new generation
  EXPECT_EQ(arena.get(b).id, 2u);
  EXPECT_EQ(arena.capacity(), 1u);
}

// Heavy churn across interleaved lifetimes: every slot is freed and
// reallocated many times while neighbours stay live. Under an ASan build of
// mc_tests this walks freshly-recycled memory, so a use-after-free or
// free-list corruption in the arena turns into a hard failure here.
TEST(RequestArenaTest, ChurnReusesSlotsWithoutCorruption) {
  RequestArena<Payload> arena;
  std::vector<ReqHandle> live;
  std::uint64_t next = 0;
  Rng rng(99);
  for (int round = 0; round < 64; ++round) {
    while (live.size() < 128)
      live.push_back(arena.alloc(Payload{next++, next * 64, false}));
    // Free a random half, touching survivors in between.
    for (int k = 0; k < 64; ++k) {
      const std::size_t i = rng.nextBounded(live.size());
      arena.free(live[i]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      const std::size_t j = rng.nextBounded(live.size());
      ASSERT_LT(arena.get(live[j]).id, next);
    }
  }
  EXPECT_EQ(arena.liveCount(), live.size());
  EXPECT_LE(arena.capacity(), 192u);  // 128 live + freed headroom, no leak
}

TEST(RequestArenaDeathTest, StaleHandleAfterFree) {
  RequestArena<Payload> arena;
  const ReqHandle h = arena.alloc(Payload{1, 0, false});
  arena.free(h);
  EXPECT_DEATH((void)arena.get(h), "stale or invalid request-arena handle");
}

TEST(RequestArenaDeathTest, StaleHandleAfterSlotReuse) {
  RequestArena<Payload> arena;
  const ReqHandle h = arena.alloc(Payload{1, 0, false});
  arena.free(h);
  (void)arena.alloc(Payload{2, 0, false});  // recycles the slot, new gen
  EXPECT_DEATH((void)arena.get(h), "stale or invalid request-arena handle");
}

TEST(RequestArenaDeathTest, DoubleFree) {
  RequestArena<Payload> arena;
  const ReqHandle h = arena.alloc(Payload{1, 0, false});
  arena.free(h);
  EXPECT_DEATH(arena.free(h), "stale or invalid request-arena handle");
}

TEST(RequestArenaDeathTest, OutOfRangeIndex) {
  RequestArena<Payload> arena;
  EXPECT_DEATH((void)arena.get(ReqHandle{5, 0}),
               "stale or invalid request-arena handle");
}

}  // namespace
}  // namespace mb::mc
