// Regression test for the shadow-state map key packing: no two distinct
// (channel, rank, bank, μbank) tuples may ever produce the same key, and an
// id outside the geometry must trap instead of silently aliasing another
// structure's history (the failure mode of the old multiplicative packing
// when an id escaped its bound).
#include "mc/key_pack.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace mb::mc {
namespace {

dram::Geometry smallGeom() {
  dram::Geometry g;
  g.channels = 4;
  g.ranksPerChannel = 2;
  g.banksPerRank = 4;
  g.ubank = {2, 4};
  g.capacityBytes = 4 * kGiB;
  return g;
}

TEST(KeyPackTest, UbankKeysAreUniqueAcrossTheWholeGeometry) {
  const auto g = smallGeom();
  std::unordered_set<std::int64_t> seen;
  for (int ch = 0; ch < g.channels; ++ch)
    for (int rk = 0; rk < g.ranksPerChannel; ++rk)
      for (int bk = 0; bk < g.banksPerRank; ++bk)
        for (int ub = 0; ub < g.ubanksPerBank(); ++ub)
          EXPECT_TRUE(seen.insert(packUbankKey(g, ch, rk, bk, ub)).second)
              << "aliased key for ch" << ch << " rk" << rk << " bk" << bk << " ub"
              << ub;
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(g.channels) *
                static_cast<std::size_t>(g.ranksPerChannel) *
                static_cast<std::size_t>(g.banksPerRank) *
                static_cast<std::size_t>(g.ubanksPerBank()));
}

TEST(KeyPackTest, RankKeysAreUniqueAcrossChannelsAndRanks) {
  const auto g = smallGeom();
  std::unordered_set<std::int64_t> seen;
  for (int ch = 0; ch < g.channels; ++ch)
    for (int rk = 0; rk < g.ranksPerChannel; ++rk)
      EXPECT_TRUE(seen.insert(packRankKey(g, ch, rk)).second);
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(g.channels * g.ranksPerChannel));
}

// The old multiplicative packing aliased e.g. (bank+1, ubank=0) with
// (bank, ubank=ubanksPerBank) once an id escaped its bound. The bit-field
// packing cannot: neighbouring tuples differ in disjoint fields.
TEST(KeyPackTest, AdjacentTuplesDifferInDisjointBitFields) {
  const auto g = smallGeom();
  const auto a = packUbankKey(g, 0, 0, 1, 0);
  const auto b = packUbankKey(g, 0, 0, 0, g.ubanksPerBank() - 1);
  EXPECT_NE(a, b);
  EXPECT_EQ(a >> kKeyUbankBits, 1);  // bank field lives above the ubank field
  EXPECT_EQ(b >> kKeyUbankBits, 0);
}

TEST(KeyPackTest, DramAddressOverloadMatchesExplicitFields) {
  const auto g = smallGeom();
  core::DramAddress da;
  da.channel = 3;
  da.rank = 1;
  da.bank = 2;
  da.ubank = 5;
  EXPECT_EQ(packUbankKey(g, da), packUbankKey(g, 3, 1, 2, 5));
}

using KeyPackDeath = ::testing::Test;

TEST(KeyPackDeath, UbankIdOutsideGeometryTraps) {
  const auto g = smallGeom();
  EXPECT_DEATH(packUbankKey(g, 0, 0, 0, g.ubanksPerBank()),
               "ubank id .* outside geometry bound");
}

TEST(KeyPackDeath, BankIdOutsideGeometryTraps) {
  const auto g = smallGeom();
  EXPECT_DEATH(packUbankKey(g, 0, 0, g.banksPerRank, 0),
               "bank id .* outside geometry bound");
}

TEST(KeyPackDeath, NegativeChannelTraps) {
  const auto g = smallGeom();
  EXPECT_DEATH(packRankKey(g, -1, 0), "channel id .* outside geometry bound");
}

TEST(KeyPackDeath, RankIdOutsideGeometryTraps) {
  const auto g = smallGeom();
  EXPECT_DEATH(packRankKey(g, 0, g.ranksPerChannel),
               "rank id .* outside geometry bound");
}

}  // namespace
}  // namespace mb::mc
