#include "mc/command_log.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace mb::mc {
namespace {

std::string tmpPath(const char* tag) {
  return std::string(::testing::TempDir()) + "mbcmd_test_" + tag + ".mbc";
}

CmdTraceConfig testConfig() {
  CmdTraceConfig cfg;
  cfg.geom.channels = 2;
  cfg.geom.ranksPerChannel = 2;
  cfg.geom.banksPerRank = 4;
  cfg.geom.ubank = {2, 2};
  cfg.geom.capacityBytes = 4 * kGiB;
  cfg.timing = dram::TimingParams::tsi();
  cfg.interleaveBaseBit = 7;
  cfg.xorBankHash = true;
  return cfg;
}

core::DramAddress addr(int channel, int rank, int bank, int ubank,
                       std::int64_t row, std::int64_t column) {
  core::DramAddress da;
  da.channel = channel;
  da.rank = rank;
  da.bank = bank;
  da.ubank = ubank;
  da.row = row;
  da.column = column;
  return da;
}

long fileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size;
}

void truncateTo(const std::string& path, long size) {
  ASSERT_EQ(0, truncate(path.c_str(), size));
}

// ---- Round trip -----------------------------------------------------------

TEST(CommandLog, ConfigAndTrailerRoundTrip) {
  const auto path = tmpPath("cfg_roundtrip");
  const auto cfg = testConfig();
  CmdTraceTrailer trailer;
  trailer.present = true;
  trailer.elapsed = 123456789;
  trailer.actPre = 1.5e6;
  trailer.rdwr = 2.25e6;
  trailer.io = 3.125e6;
  trailer.staticEnergy = 4.0625e6;
  trailer.activations = 42;
  trailer.casOps = 97;
  trailer.refreshes = 7;
  {
    CommandLogWriter w(path, cfg);
    w.onCommand(DramCommand::Act, addr(1, 0, 3, 2, 11, -1), 100, -1, -1);
    w.writeTrailer(trailer);
    EXPECT_EQ(w.eventsWritten(), 1);
  }
  analysis::DiagnosticEngine diags;
  const auto trace = readCmdTrace(path, diags);
  ASSERT_TRUE(trace.has_value()) << diags.renderText();
  EXPECT_TRUE(diags.empty());

  const auto& c = trace->config;
  EXPECT_EQ(c.geom.channels, cfg.geom.channels);
  EXPECT_EQ(c.geom.ranksPerChannel, cfg.geom.ranksPerChannel);
  EXPECT_EQ(c.geom.banksPerRank, cfg.geom.banksPerRank);
  EXPECT_EQ(c.geom.ubank.nW, cfg.geom.ubank.nW);
  EXPECT_EQ(c.geom.ubank.nB, cfg.geom.ubank.nB);
  EXPECT_EQ(c.geom.rowBytes, cfg.geom.rowBytes);
  EXPECT_EQ(c.geom.capacityBytes, cfg.geom.capacityBytes);
  EXPECT_EQ(c.geom.lineBytes, cfg.geom.lineBytes);
  EXPECT_EQ(c.interleaveBaseBit, cfg.interleaveBaseBit);
  EXPECT_EQ(c.xorBankHash, cfg.xorBankHash);
  EXPECT_EQ(c.timing.tRCD, cfg.timing.tRCD);
  EXPECT_EQ(c.timing.tFAW, cfg.timing.tFAW);
  EXPECT_EQ(c.timing.tRFCpb, cfg.timing.tRFCpb);
  EXPECT_EQ(c.energy.fullRowBytes, cfg.energy.fullRowBytes);
  EXPECT_DOUBLE_EQ(c.energy.actPreFullRow, cfg.energy.actPreFullRow);
  EXPECT_DOUBLE_EQ(c.energy.refreshPerRank, cfg.energy.refreshPerRank);

  ASSERT_TRUE(trace->trailer.present);
  EXPECT_EQ(trace->trailer.elapsed, trailer.elapsed);
  EXPECT_DOUBLE_EQ(trace->trailer.actPre, trailer.actPre);
  EXPECT_DOUBLE_EQ(trace->trailer.rdwr, trailer.rdwr);
  EXPECT_DOUBLE_EQ(trace->trailer.io, trailer.io);
  EXPECT_DOUBLE_EQ(trace->trailer.staticEnergy, trailer.staticEnergy);
  EXPECT_EQ(trace->trailer.activations, trailer.activations);
  EXPECT_EQ(trace->trailer.casOps, trailer.casOps);
  EXPECT_EQ(trace->trailer.refreshes, trailer.refreshes);
  std::remove(path.c_str());
}

// Property: any event stream the writer can emit survives the disk round
// trip field-for-field, including the pseudo-events (refresh with bank -1,
// oracle PRE) and negative "not meaningful" sentinels.
TEST(CommandLog, RandomEventStreamRoundTripsExactly) {
  const auto path = tmpPath("event_roundtrip");
  const auto cfg = testConfig();
  Rng rng(0xc0ffee);
  CommandLogRecorder expected(cfg);  // in-memory twin of the written stream
  {
    CommandLogWriter w(path, cfg);
    Tick at = 0;
    for (int i = 0; i < 5000; ++i) {
      at += 1 + static_cast<Tick>(rng.nextBounded(5000));
      const auto da = addr(static_cast<int>(rng.nextBounded(2)),
                           static_cast<int>(rng.nextBounded(2)),
                           static_cast<int>(rng.nextBounded(4)),
                           static_cast<int>(rng.nextBounded(4)),
                           static_cast<std::int64_t>(rng.nextBounded(1 << 20)),
                           static_cast<std::int64_t>(rng.nextBounded(128)));
      switch (rng.nextBounded(6)) {
        case 0:
          w.onCommand(DramCommand::Act, da, at, -1, -1);
          expected.onCommand(DramCommand::Act, da, at, -1, -1);
          break;
        case 1:
          w.onCommand(DramCommand::Pre, da, at, -1, -1);
          expected.onCommand(DramCommand::Pre, da, at, -1, -1);
          break;
        case 2:
          w.onCommand(DramCommand::Read, da, at, at + 100, at + 200);
          expected.onCommand(DramCommand::Read, da, at, at + 100, at + 200);
          break;
        case 3:
          w.onCommand(DramCommand::Write, da, at, at + 100, at + 200);
          expected.onCommand(DramCommand::Write, da, at, at + 100, at + 200);
          break;
        case 4: {
          const int bank = rng.nextBounded(2) == 0 ? -1 : da.bank;
          w.onRefresh(da.channel, da.rank, bank, at);
          expected.onRefresh(da.channel, da.rank, bank, at);
          break;
        }
        case 5:
          w.onOraclePre(da, at);
          expected.onOraclePre(da, at);
          break;
      }
    }
    EXPECT_EQ(w.eventsWritten(), 5000);
  }
  analysis::DiagnosticEngine diags;
  const auto trace = readCmdTrace(path, diags);
  ASSERT_TRUE(trace.has_value()) << diags.renderText();
  const auto& want = expected.trace().events;
  ASSERT_EQ(trace->events.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    const auto& a = trace->events[i];
    const auto& b = want[i];
    ASSERT_EQ(a.kind, b.kind) << "event " << i;
    ASSERT_EQ(a.channel, b.channel) << "event " << i;
    ASSERT_EQ(a.rank, b.rank) << "event " << i;
    ASSERT_EQ(a.bank, b.bank) << "event " << i;
    ASSERT_EQ(a.ubank, b.ubank) << "event " << i;
    ASSERT_EQ(a.row, b.row) << "event " << i;
    ASSERT_EQ(a.column, b.column) << "event " << i;
    ASSERT_EQ(a.at, b.at) << "event " << i;
    ASSERT_EQ(a.dataStart, b.dataStart) << "event " << i;
    ASSERT_EQ(a.dataEnd, b.dataEnd) << "event " << i;
  }
  // A writer closed without a trailer yields trailer.present == false.
  EXPECT_FALSE(trace->trailer.present);
  std::remove(path.c_str());
}

// ---- Malformed input ------------------------------------------------------
// Every malformed-input class maps to its stable MB-TRC code, reported
// through the engine with nullopt returned — never an abort.

std::string firstCode(const std::string& path) {
  analysis::DiagnosticEngine diags;
  const auto trace = readCmdTrace(path, diags);
  EXPECT_FALSE(trace.has_value());
  if (diags.diagnostics().empty()) return "<no diagnostic>";
  return diags.diagnostics().front().code;
}

// Writes a minimal valid one-event trace and returns its path.
std::string writeValidTrace(const char* tag, bool withTrailer = true) {
  const auto path = tmpPath(tag);
  CommandLogWriter w(path, testConfig());
  w.onCommand(DramCommand::Act, addr(0, 0, 0, 0, 1, -1), 10, -1, -1);
  if (withTrailer) w.writeTrailer(CmdTraceTrailer{});
  w.close();
  return path;
}

TEST(CommandLogMalformed, MissingFileIsTrc006) {
  EXPECT_EQ(firstCode("/nonexistent/cmds.mbc"), "MB-TRC-006");
}

TEST(CommandLogMalformed, BadMagicIsTrc007) {
  const auto path = tmpPath("badmagic");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("MBTRACE1garbage-not-a-command-trace", f);  // wrong family
  std::fclose(f);
  EXPECT_EQ(firstCode(path), "MB-TRC-007");
  std::remove(path.c_str());
}

TEST(CommandLogMalformed, UnsupportedVersionIsTrc008) {
  const auto path = tmpPath("badversion");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("MBCMDT1\0", 1, 8, f);
  const std::uint32_t version = 42, reserved = 0;
  std::fwrite(&version, sizeof(version), 1, f);
  std::fwrite(&reserved, sizeof(reserved), 1, f);
  std::fclose(f);
  EXPECT_EQ(firstCode(path), "MB-TRC-008");
  std::remove(path.c_str());
}

TEST(CommandLogMalformed, TruncatedConfigHeaderIsTrc009) {
  const auto path = writeValidTrace("truncconfig");
  truncateTo(path, 16 + 20);  // magic+version+reserved, then partial config
  EXPECT_EQ(firstCode(path), "MB-TRC-009");
  std::remove(path.c_str());
}

TEST(CommandLogMalformed, TruncatedEventIsTrc009) {
  const auto path = writeValidTrace("truncevent", /*withTrailer=*/false);
  truncateTo(path, fileSize(path) - 1);
  EXPECT_EQ(firstCode(path), "MB-TRC-009");
  std::remove(path.c_str());
}

TEST(CommandLogMalformed, TruncatedTrailerIsTrc009) {
  const auto path = writeValidTrace("trunctrailer");
  truncateTo(path, fileSize(path) - 1);
  EXPECT_EQ(firstCode(path), "MB-TRC-009");
  std::remove(path.c_str());
}

TEST(CommandLogMalformed, HeaderOnlyFileIsTrc010) {
  const auto path = tmpPath("headeronly");
  {
    CommandLogWriter w(path, testConfig());  // no events, no trailer
  }
  EXPECT_EQ(firstCode(path), "MB-TRC-010");
  std::remove(path.c_str());
}

TEST(CommandLogMalformed, UnknownEventKindIsTrc011) {
  const auto path = writeValidTrace("badkind", /*withTrailer=*/false);
  // Corrupt the one event's kind byte. An event is 49 bytes on disk
  // (u8 kind + 4 x i16 + 5 x i64) and is the last thing in this file.
  const long size = fileSize(path);
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  std::fseek(f, size - 49, SEEK_SET);
  std::fputc(0x7f, f);
  std::fclose(f);
  EXPECT_EQ(firstCode(path), "MB-TRC-011");
  std::remove(path.c_str());
}

TEST(CommandLogMalformed, TrailingDataAfterTrailerIsTrc012) {
  const auto path = writeValidTrace("trailing");
  std::FILE* f = std::fopen(path.c_str(), "ab");
  std::fputc('x', f);
  std::fclose(f);
  EXPECT_EQ(firstCode(path), "MB-TRC-012");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mb::mc
