#include "mc/timing_checker.hpp"

#include <gtest/gtest.h>

namespace mb::mc {
namespace {

dram::Geometry geom() {
  dram::Geometry g;
  g.channels = 1;
  g.ranksPerChannel = 2;
  g.banksPerRank = 2;
  g.ubank = {2, 2};
  g.capacityBytes = 4 * kGiB;
  return g;
}

core::DramAddress addr(int rank, int bank, int ubank, std::int64_t row) {
  core::DramAddress da;
  da.rank = rank;
  da.bank = bank;
  da.ubank = ubank;
  da.row = row;
  return da;
}

class TimingCheckerTest : public ::testing::Test {
 protected:
  TimingCheckerTest() : t_(dram::TimingParams::tsi()), chk_(geom(), t_) {
    chk_.softFail = true;  // return false instead of aborting
  }
  dram::TimingParams t_;
  TimingChecker chk_;
};

TEST_F(TimingCheckerTest, LegalSequencePasses) {
  const auto a = addr(0, 0, 0, 5);
  EXPECT_TRUE(chk_.onCommand(DramCommand::Act, a, 0));
  EXPECT_TRUE(chk_.onCommand(DramCommand::Read, a, t_.tRCD));
  EXPECT_TRUE(chk_.onCommand(DramCommand::Pre, a, t_.tRAS));
  EXPECT_TRUE(chk_.onCommand(DramCommand::Act, a, t_.tRAS + t_.tRP));
  EXPECT_EQ(chk_.commandsChecked(), 4);
}

TEST_F(TimingCheckerTest, EarlyCasFailsTrcd) {
  const auto a = addr(0, 0, 0, 5);
  chk_.onCommand(DramCommand::Act, a, 0);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Read, a, t_.tRCD - 1));
}

TEST_F(TimingCheckerTest, EarlyPreFailsTras) {
  const auto a = addr(0, 0, 0, 5);
  chk_.onCommand(DramCommand::Act, a, 0);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Pre, a, t_.tRAS - 1));
}

TEST_F(TimingCheckerTest, EarlyReactivateFailsTrp) {
  const auto a = addr(0, 0, 0, 5);
  chk_.onCommand(DramCommand::Act, a, 0);
  chk_.onCommand(DramCommand::Pre, a, t_.tRAS);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Act, a, t_.tRAS + t_.tRP - 1));
}

TEST_F(TimingCheckerTest, CasToWrongRowFails) {
  chk_.onCommand(DramCommand::Act, addr(0, 0, 0, 5), 0);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Read, addr(0, 0, 0, 6), t_.tRCD));
}

TEST_F(TimingCheckerTest, ActToOpenBankFails) {
  chk_.onCommand(DramCommand::Act, addr(0, 0, 0, 5), 0);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Act, addr(0, 0, 0, 6), t_.tRC()));
}

TEST_F(TimingCheckerTest, PreToClosedBankFails) {
  EXPECT_FALSE(chk_.onCommand(DramCommand::Pre, addr(0, 0, 0, 5), 0));
}

TEST_F(TimingCheckerTest, TrrdViolationFails) {
  chk_.onCommand(DramCommand::Act, addr(0, 0, 0, 1), 0);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Act, addr(0, 1, 0, 1), t_.tRRD - 1));
}

TEST_F(TimingCheckerTest, DifferentRanksIgnoreTrrd) {
  chk_.onCommand(DramCommand::Act, addr(0, 0, 0, 1), 0);
  EXPECT_TRUE(chk_.onCommand(DramCommand::Act, addr(1, 0, 0, 1), t_.tCMD));
}

TEST_F(TimingCheckerTest, FawViolationFails) {
  Tick at = 0;
  for (int u = 0; u < 4; ++u) {
    EXPECT_TRUE(chk_.onCommand(DramCommand::Act, addr(0, 0, u, 1), at));
    at += t_.tRRD;
  }
  // Fifth activate inside the window of the first.
  EXPECT_FALSE(chk_.onCommand(DramCommand::Act, addr(0, 1, 0, 1), at));
}

TEST_F(TimingCheckerTest, FifthActAfterFawPasses) {
  Tick at = 0;
  for (int u = 0; u < 4; ++u) {
    chk_.onCommand(DramCommand::Act, addr(0, 0, u, 1), at);
    at += t_.tRRD;
  }
  EXPECT_TRUE(chk_.onCommand(DramCommand::Act, addr(0, 1, 0, 1), t_.tFAW));
}

TEST_F(TimingCheckerTest, DataBusOverlapFails) {
  const auto a = addr(0, 0, 0, 5);
  const auto b = addr(0, 1, 0, 7);
  chk_.onCommand(DramCommand::Act, a, 0);
  chk_.onCommand(DramCommand::Act, b, t_.tRRD);
  chk_.onCommand(DramCommand::Read, a, t_.tRCD);
  // A CAS one tick later would overlap the first burst.
  EXPECT_FALSE(chk_.onCommand(DramCommand::Read, b, t_.tRCD + t_.tCCD - 1));
}

TEST_F(TimingCheckerTest, WriteToReadTurnaroundEnforced) {
  const auto a = addr(0, 0, 0, 5);
  const auto b = addr(0, 1, 0, 7);
  chk_.onCommand(DramCommand::Act, a, 0);
  chk_.onCommand(DramCommand::Act, b, t_.tRRD);
  chk_.onCommand(DramCommand::Write, a, t_.tRCD);
  const Tick wrEnd = t_.tRCD + t_.tAA + t_.tBURST;
  EXPECT_FALSE(chk_.onCommand(DramCommand::Read, b, wrEnd + t_.tWTR - 1));
}

TEST_F(TimingCheckerTest, WriteRecoveryBeforePreEnforced) {
  const auto a = addr(0, 0, 0, 5);
  chk_.onCommand(DramCommand::Act, a, 0);
  chk_.onCommand(DramCommand::Write, a, t_.tRCD);
  const Tick wrEnd = t_.tRCD + t_.tAA + t_.tBURST;
  EXPECT_FALSE(chk_.onCommand(DramCommand::Pre, a, wrEnd + t_.tWR - 1));
  EXPECT_TRUE(chk_.onCommand(DramCommand::Pre, a, wrEnd + t_.tWR));
}

TEST_F(TimingCheckerTest, ReadToPreRespectsTrtp) {
  const auto a = addr(0, 0, 0, 5);
  chk_.onCommand(DramCommand::Act, a, 0);
  const Tick cas = t_.tRAS - t_.tRTP + 1;  // late CAS so tRTP binds, not tRAS
  chk_.onCommand(DramCommand::Read, a, cas);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Pre, a, cas + t_.tRTP - 1));
}

TEST_F(TimingCheckerTest, CommandBusSlotEnforced) {
  chk_.onCommand(DramCommand::Act, addr(0, 0, 0, 1), 0);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Act, addr(1, 0, 0, 1), t_.tCMD - 1));
}

TEST(TimingCheckerDeath, HardFailAborts) {
  TimingChecker chk(geom(), dram::TimingParams::tsi());
  core::DramAddress a;
  a.row = 1;
  chk.onCommand(DramCommand::Act, a, 0);
  EXPECT_DEATH(chk.onCommand(DramCommand::Read, a, 0), "timing violation");
}

}  // namespace
}  // namespace mb::mc
