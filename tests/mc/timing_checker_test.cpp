#include "mc/timing_checker.hpp"

#include <gtest/gtest.h>

namespace mb::mc {
namespace {

dram::Geometry geom() {
  dram::Geometry g;
  g.channels = 1;
  g.ranksPerChannel = 2;
  g.banksPerRank = 2;
  g.ubank = {2, 2};
  g.capacityBytes = 4 * kGiB;
  return g;
}

core::DramAddress addr(int rank, int bank, int ubank, std::int64_t row) {
  core::DramAddress da;
  da.rank = rank;
  da.bank = bank;
  da.ubank = ubank;
  da.row = row;
  return da;
}

class TimingCheckerTest : public ::testing::Test {
 protected:
  TimingCheckerTest() : t_(dram::TimingParams::tsi()), chk_(geom(), t_) {
    chk_.softFail = true;  // return false instead of aborting
  }
  dram::TimingParams t_;
  TimingChecker chk_;
};

TEST_F(TimingCheckerTest, LegalSequencePasses) {
  const auto a = addr(0, 0, 0, 5);
  EXPECT_TRUE(chk_.onCommand(DramCommand::Act, a, 0));
  EXPECT_TRUE(chk_.onCommand(DramCommand::Read, a, t_.tRCD));
  EXPECT_TRUE(chk_.onCommand(DramCommand::Pre, a, t_.tRAS));
  EXPECT_TRUE(chk_.onCommand(DramCommand::Act, a, t_.tRAS + t_.tRP));
  EXPECT_EQ(chk_.commandsChecked(), 4);
}

TEST_F(TimingCheckerTest, EarlyCasFailsTrcd) {
  const auto a = addr(0, 0, 0, 5);
  chk_.onCommand(DramCommand::Act, a, 0);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Read, a, t_.tRCD - 1));
}

TEST_F(TimingCheckerTest, EarlyPreFailsTras) {
  const auto a = addr(0, 0, 0, 5);
  chk_.onCommand(DramCommand::Act, a, 0);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Pre, a, t_.tRAS - 1));
}

TEST_F(TimingCheckerTest, EarlyReactivateFailsTrp) {
  const auto a = addr(0, 0, 0, 5);
  chk_.onCommand(DramCommand::Act, a, 0);
  chk_.onCommand(DramCommand::Pre, a, t_.tRAS);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Act, a, t_.tRAS + t_.tRP - 1));
}

TEST_F(TimingCheckerTest, CasToWrongRowFails) {
  chk_.onCommand(DramCommand::Act, addr(0, 0, 0, 5), 0);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Read, addr(0, 0, 0, 6), t_.tRCD));
}

TEST_F(TimingCheckerTest, ActToOpenBankFails) {
  chk_.onCommand(DramCommand::Act, addr(0, 0, 0, 5), 0);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Act, addr(0, 0, 0, 6), t_.tRC()));
}

TEST_F(TimingCheckerTest, PreToClosedBankFails) {
  EXPECT_FALSE(chk_.onCommand(DramCommand::Pre, addr(0, 0, 0, 5), 0));
}

TEST_F(TimingCheckerTest, TrrdViolationFails) {
  chk_.onCommand(DramCommand::Act, addr(0, 0, 0, 1), 0);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Act, addr(0, 1, 0, 1), t_.tRRD - 1));
}

TEST_F(TimingCheckerTest, DifferentRanksIgnoreTrrd) {
  chk_.onCommand(DramCommand::Act, addr(0, 0, 0, 1), 0);
  EXPECT_TRUE(chk_.onCommand(DramCommand::Act, addr(1, 0, 0, 1), t_.tCMD));
}

TEST_F(TimingCheckerTest, FawViolationFails) {
  Tick at = 0;
  for (int u = 0; u < 4; ++u) {
    EXPECT_TRUE(chk_.onCommand(DramCommand::Act, addr(0, 0, u, 1), at));
    at += t_.tRRD;
  }
  // Fifth activate inside the window of the first.
  EXPECT_FALSE(chk_.onCommand(DramCommand::Act, addr(0, 1, 0, 1), at));
}

TEST_F(TimingCheckerTest, FifthActAfterFawPasses) {
  Tick at = 0;
  for (int u = 0; u < 4; ++u) {
    chk_.onCommand(DramCommand::Act, addr(0, 0, u, 1), at);
    at += t_.tRRD;
  }
  EXPECT_TRUE(chk_.onCommand(DramCommand::Act, addr(0, 1, 0, 1), t_.tFAW));
}

TEST_F(TimingCheckerTest, DataBusOverlapFails) {
  const auto a = addr(0, 0, 0, 5);
  const auto b = addr(0, 1, 0, 7);
  chk_.onCommand(DramCommand::Act, a, 0);
  chk_.onCommand(DramCommand::Act, b, t_.tRRD);
  chk_.onCommand(DramCommand::Read, a, t_.tRCD);
  // A CAS one tick later would overlap the first burst.
  EXPECT_FALSE(chk_.onCommand(DramCommand::Read, b, t_.tRCD + t_.tCCD - 1));
}

TEST_F(TimingCheckerTest, WriteToReadTurnaroundEnforced) {
  const auto a = addr(0, 0, 0, 5);
  const auto b = addr(0, 1, 0, 7);
  chk_.onCommand(DramCommand::Act, a, 0);
  chk_.onCommand(DramCommand::Act, b, t_.tRRD);
  chk_.onCommand(DramCommand::Write, a, t_.tRCD);
  const Tick wrEnd = t_.tRCD + t_.tAA + t_.tBURST;
  EXPECT_FALSE(chk_.onCommand(DramCommand::Read, b, wrEnd + t_.tWTR - 1));
}

TEST_F(TimingCheckerTest, WriteRecoveryBeforePreEnforced) {
  const auto a = addr(0, 0, 0, 5);
  chk_.onCommand(DramCommand::Act, a, 0);
  chk_.onCommand(DramCommand::Write, a, t_.tRCD);
  const Tick wrEnd = t_.tRCD + t_.tAA + t_.tBURST;
  EXPECT_FALSE(chk_.onCommand(DramCommand::Pre, a, wrEnd + t_.tWR - 1));
  EXPECT_TRUE(chk_.onCommand(DramCommand::Pre, a, wrEnd + t_.tWR));
}

TEST_F(TimingCheckerTest, ReadToPreRespectsTrtp) {
  const auto a = addr(0, 0, 0, 5);
  chk_.onCommand(DramCommand::Act, a, 0);
  const Tick cas = t_.tRAS - t_.tRTP + 1;  // late CAS so tRTP binds, not tRAS
  chk_.onCommand(DramCommand::Read, a, cas);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Pre, a, cas + t_.tRTP - 1));
}

TEST_F(TimingCheckerTest, CommandBusSlotEnforced) {
  chk_.onCommand(DramCommand::Act, addr(0, 0, 0, 1), 0);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Act, addr(1, 0, 0, 1), t_.tCMD - 1));
}

// ---- Structured diagnostics ----------------------------------------------
// A violation must produce a machine-readable diagnostic naming the
// offending command, the violated constraint, and the shadow history of the
// μbank / rank / channel involved — in both text and JSON.

class TimingCheckerDiagnosticsTest : public TimingCheckerTest {
 protected:
  TimingCheckerDiagnosticsTest() {
    chk_.softFail = false;  // the engine, not softFail, must absorb failures
    chk_.diagnostics = &engine_;
  }
  analysis::DiagnosticEngine engine_;
};

TEST_F(TimingCheckerDiagnosticsTest, ViolationIsCollectedNotFatal) {
  const auto a = addr(0, 0, 0, 5);
  chk_.onCommand(DramCommand::Act, a, 0);
  EXPECT_FALSE(chk_.onCommand(DramCommand::Read, a, t_.tRCD - 1));
  ASSERT_EQ(engine_.diagnostics().size(), 1u);
  EXPECT_TRUE(engine_.hasErrors());
}

TEST_F(TimingCheckerDiagnosticsTest, DiagnosticCarriesCommandConstraintAndShadowState) {
  const auto a = addr(0, 1, 1, 5);
  chk_.onCommand(DramCommand::Act, a, 0);
  chk_.onCommand(DramCommand::Read, a, t_.tRCD - 1);
  ASSERT_EQ(engine_.diagnostics().size(), 1u);
  const auto& d = engine_.diagnostics().front();
  EXPECT_EQ(d.code, "MB-TIM-012");
  EXPECT_EQ(d.severity, analysis::Severity::Error);

  auto ctx = [&](const std::string& key) -> std::string {
    for (const auto& [k, v] : d.context)
      if (k == key) return v;
    return "<missing " + key + ">";
  };
  EXPECT_EQ(ctx("command"), "RD");
  EXPECT_EQ(ctx("address"), a.toString());
  EXPECT_EQ(ctx("at_ps"), std::to_string(t_.tRCD - 1));
  EXPECT_EQ(ctx("constraint"), "tRCD (ACT->CAS)");
  EXPECT_EQ(ctx("bound_ps"), std::to_string(t_.tRCD));
  EXPECT_EQ(ctx("earliest_legal_ps"), std::to_string(t_.tRCD));
  // μbank shadow history: the ACT at t=0 opened row 5.
  EXPECT_EQ(ctx("ubank.open_row"), "5");
  EXPECT_EQ(ctx("ubank.last_act_ps"), "0");
  // Rank / channel shadow history.
  EXPECT_EQ(ctx("rank.last_act_ps"), "0");
  EXPECT_EQ(ctx("rank.acts_in_faw_window"), "1");
  EXPECT_EQ(ctx("channel.last_cmd_ps"), "0");
}

TEST_F(TimingCheckerDiagnosticsTest, TextRenderingNamesTheViolation) {
  const auto a = addr(0, 0, 0, 5);
  chk_.onCommand(DramCommand::Act, a, 0);
  chk_.onCommand(DramCommand::Pre, a, t_.tRAS - 1);
  ASSERT_EQ(engine_.diagnostics().size(), 1u);
  const std::string text = engine_.diagnostics().front().text();
  EXPECT_NE(text.find("error MB-TIM-008"), std::string::npos) << text;
  EXPECT_NE(text.find("DRAM timing violation: tRAS (ACT->PRE)"), std::string::npos);
  EXPECT_NE(text.find("command: PRE"), std::string::npos);
  EXPECT_NE(text.find("ubank.last_act_ps: 0"), std::string::npos);
}

TEST_F(TimingCheckerDiagnosticsTest, JsonRenderingIsStructured) {
  const auto a = addr(0, 0, 0, 5);
  chk_.onCommand(DramCommand::Act, a, 0);
  chk_.onCommand(DramCommand::Read, a, t_.tRCD - 1);
  ASSERT_EQ(engine_.diagnostics().size(), 1u);
  const std::string j = engine_.diagnostics().front().json();
  EXPECT_NE(j.find("\"code\":\"MB-TIM-012\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(j.find("\"command\":\"RD\""), std::string::npos);
  EXPECT_NE(j.find("\"constraint\":\"tRCD (ACT->CAS)\""), std::string::npos);
  EXPECT_NE(j.find("\"ubank.open_row\":\"5\""), std::string::npos);
}

TEST_F(TimingCheckerDiagnosticsTest, EachConstraintHasItsOwnStableCode) {
  // tFAW: four fast ACTs then a fifth inside the window.
  Tick at = 0;
  for (int u = 0; u < 4; ++u) {
    chk_.onCommand(DramCommand::Act, addr(0, 0, u, 1), at);
    at += t_.tRRD;
  }
  chk_.onCommand(DramCommand::Act, addr(0, 1, 0, 1), at);
  ASSERT_EQ(engine_.diagnostics().size(), 1u);
  EXPECT_EQ(engine_.diagnostics().front().code, "MB-TIM-006");
  engine_.clear();

  // Command-bus slot.
  chk_.onCommand(DramCommand::Act, addr(1, 0, 0, 1), at + t_.tFAW);
  chk_.onCommand(DramCommand::Act, addr(1, 1, 0, 1), at + t_.tFAW + t_.tCMD - 1);
  ASSERT_EQ(engine_.diagnostics().size(), 1u);
  EXPECT_EQ(engine_.diagnostics().front().code, "MB-TIM-002");
}

TEST_F(TimingCheckerDiagnosticsTest, LegalTrafficProducesZeroDiagnostics) {
  const auto a = addr(0, 0, 0, 5);
  EXPECT_TRUE(chk_.onCommand(DramCommand::Act, a, 0));
  EXPECT_TRUE(chk_.onCommand(DramCommand::Read, a, t_.tRCD));
  EXPECT_TRUE(chk_.onCommand(DramCommand::Pre, a, t_.tRAS));
  EXPECT_TRUE(engine_.empty());
}

// ---- Bounded shadow history ----------------------------------------------
// The per-rank ACT window is pruned at commit time to the tFAW horizon, so
// an arbitrarily long run retains at most 4 entries per rank — and pruning
// must never change a verdict (the window is exactly the state tFAW needs).

TEST_F(TimingCheckerTest, ActHistoryStaysBoundedOverLongRuns) {
  Tick at = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto a = addr(0, i % 2, (i / 2) % 2, 1);
    ASSERT_TRUE(chk_.onCommand(DramCommand::Act, a, at));
    ASSERT_TRUE(chk_.onCommand(DramCommand::Pre, a, at + t_.tRAS));
    at += t_.tRC();
    ASSERT_LE(chk_.maxActWindowDepth(), 4u);
  }
  EXPECT_EQ(chk_.commandsChecked(), 2000);
}

TEST_F(TimingCheckerTest, PruningPreservesFawVerdicts) {
  // Long warm-up so every rank has pruned many times...
  Tick at = 0;
  for (int i = 0; i < 200; ++i) {
    const auto a = addr(0, i % 2, (i / 2) % 2, 1);
    chk_.onCommand(DramCommand::Act, a, at);
    chk_.onCommand(DramCommand::Pre, a, at + t_.tRAS);
    at += t_.tRC();
  }
  // ...then the canonical tFAW probe on that same rank must behave exactly
  // as from scratch: a fifth ACT inside the window of the first still
  // fails, and the same ACT at exactly tFAW passes.
  const Tick base = at + t_.tFAW;  // clear of the warm-up window
  Tick probe = base;
  for (int u = 0; u < 4; ++u) {
    ASSERT_TRUE(chk_.onCommand(DramCommand::Act, addr(0, 0, u, 1), probe));
    probe += t_.tRRD;
  }
  EXPECT_FALSE(chk_.onCommand(DramCommand::Act, addr(0, 1, 0, 1), probe));
  EXPECT_TRUE(chk_.onCommand(DramCommand::Act, addr(0, 1, 0, 1), base + t_.tFAW));
  EXPECT_LE(chk_.maxActWindowDepth(), 4u);
}

TEST(TimingCheckerDeath, HardFailAborts) {
  TimingChecker chk(geom(), dram::TimingParams::tsi());
  core::DramAddress a;
  a.row = 1;
  chk.onCommand(DramCommand::Act, a, 0);
  EXPECT_DEATH(chk.onCommand(DramCommand::Read, a, 0), "timing violation");
}

}  // namespace
}  // namespace mb::mc
