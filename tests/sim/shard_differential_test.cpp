// Differential property test for channel-sharded execution (DESIGN.md §14):
// over a seeded (config, workload) grid, a sharded run must be bitwise
// indistinguishable from the serial run — the full JSON report, the MBCMDT1
// command-trace bytes, and a mid-run MBCKPT1 snapshot all compare EQUAL as
// bytes, not approximately. Adversarial shapes ride along: a single-channel
// system, more shards than channels, a workload that leaves almost every
// channel with zero requests, and checkpoint/restore cut mid-window across
// shard counts (including restoring a sharded-written snapshot serially and
// vice versa).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/journal.hpp"
#include "sim/system.hpp"
#include "trace/trace_file.hpp"

namespace mb::sim {
namespace {

std::string readFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// splitmix64: tiny, seedable, and stable across platforms — the grid below
/// must name the same cells forever so failures reproduce by index.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct Cell {
  std::string label;
  SystemConfig cfg;
  WorkloadSpec workload;
  int shards = 2;
};

/// Seeded random grid. Four cells keeps the suite under a few seconds while
/// still crossing PHY, partitioning, scheduler, policy, channel count and
/// workload — every dimension that feeds the per-channel event streams.
std::vector<Cell> seededGrid() {
  std::uint64_t rng = 0x5eedc0ffee0d10ull;  // fixed: the grid is part of the test
  const interface::PhyKind phys[] = {interface::PhyKind::LpddrTsi,
                                     interface::PhyKind::Hmc,
                                     interface::PhyKind::Ddr3Tsi};
  const dram::UbankConfig ubanks[] = {{1, 1}, {4, 4}, {8, 2}};
  const mc::SchedulerKind scheds[] = {mc::SchedulerKind::Fcfs,
                                      mc::SchedulerKind::FrFcfs,
                                      mc::SchedulerKind::ParBs};
  const trace::MtKind kinds[] = {trace::MtKind::Radix, trace::MtKind::Fft,
                                 trace::MtKind::Canneal, trace::MtKind::TpcC};
  const int channelChoices[] = {2, 4, 8};

  std::vector<Cell> grid;
  for (int i = 0; i < 4; ++i) {
    Cell c;
    c.cfg.phy = phys[splitmix64(rng) % 3];
    c.cfg.ubank = ubanks[splitmix64(rng) % 3];
    c.cfg.scheduler = scheds[splitmix64(rng) % 3];
    c.cfg.pagePolicy = (splitmix64(rng) % 2 == 0) ? core::PolicyKind::Open
                                                  : core::PolicyKind::Close;
    c.cfg.channels = channelChoices[splitmix64(rng) % 3];
    c.cfg.queueDepth = (splitmix64(rng) % 2 == 0) ? 16 : 32;
    c.cfg.perBankRefresh = splitmix64(rng) % 2 == 0;
    c.cfg.xorBankHash = splitmix64(rng) % 2 == 0;
    c.cfg.seed = 1000 + splitmix64(rng) % 9000;
    c.cfg.hier.numCores = 8;
    c.cfg.hier.coresPerCluster = 4;
    c.cfg.core.maxInstrs = 4000;
    c.workload = WorkloadSpec::mt(kinds[splitmix64(rng) % 4]);
    // Exercise both partial pools and one-worker-per-channel.
    c.shards = 2 + static_cast<int>(splitmix64(rng) %
                                    static_cast<std::uint64_t>(c.cfg.channels - 1));
    std::ostringstream label;
    label << "cell" << i << ":" << c.workload.name << " phy="
          << static_cast<int>(c.cfg.phy) << " ch=" << c.cfg.channels
          << " shards=" << c.shards;
    c.label = label.str();
    grid.push_back(c);
  }
  return grid;
}

std::string runJson(const SystemConfig& cfg, const WorkloadSpec& wl,
                    const RunOptions& opts) {
  return runResultToJson(runSimulation(cfg, wl, opts));
}

// Report JSON and MBCMDT1 command-trace bytes: serial vs sharded, per cell.
TEST(ShardDifferential, ReportAndCommandTraceBitwiseEqual) {
  for (const Cell& cell : seededGrid()) {
    SCOPED_TRACE(cell.label);
    const std::string serialTrace =
        ::testing::TempDir() + "mb_sdiff_ser_" + std::to_string(cell.cfg.seed) + ".mbcmd";
    const std::string shardTrace =
        ::testing::TempDir() + "mb_sdiff_shd_" + std::to_string(cell.cfg.seed) + ".mbcmd";

    SystemConfig cfg = cell.cfg;
    cfg.recordCmdsPath = serialTrace;
    RunOptions serial;
    serial.shards = 1;
    const std::string serialJson = runJson(cfg, cell.workload, serial);

    cfg.recordCmdsPath = shardTrace;
    RunOptions sharded;
    sharded.shards = cell.shards;
    const std::string shardedJson = runJson(cfg, cell.workload, sharded);

    EXPECT_EQ(serialJson, shardedJson);
    const std::string serialBytes = readFileBytes(serialTrace);
    ASSERT_FALSE(serialBytes.empty());
    EXPECT_EQ(serialBytes, readFileBytes(shardTrace))
        << "MBCMDT1 streams diverged";
    std::remove(serialTrace.c_str());
    std::remove(shardTrace.c_str());
  }
}

// Mid-window checkpoint: the snapshot FILE must be byte-identical across
// shard counts (the format has no shard-dependent content), and restores
// must complete bit-identically in every serial/sharded pairing — including
// restoring a sharded-written snapshot with a serial engine and vice versa.
TEST(ShardDifferential, MidRunCheckpointBytesAndRestoresMatch) {
  const auto grid = seededGrid();
  for (std::size_t i = 0; i < 2; ++i) {  // two cells: this test runs 6 sims each
    const Cell& cell = grid[i];
    SCOPED_TRACE(cell.label);
    const RunResult cold = runSimulation(cell.cfg, cell.workload);
    ASSERT_GT(cold.elapsed, 0);
    const std::string coldJson = runResultToJson(cold);

    // +7 ps: deliberately NOT aligned to any command/window granularity, so
    // the cut lands strictly inside a lookahead window.
    const Tick cut = cold.elapsed / 2 + 7;
    const std::string serialCkpt = ::testing::TempDir() + "mb_sdiff_ser" +
                                   std::to_string(i) + ".mbk";
    const std::string shardCkpt = ::testing::TempDir() + "mb_sdiff_shd" +
                                  std::to_string(i) + ".mbk";

    RunOptions serial;
    serial.shards = 1;
    serial.checkpointAt = cut;
    serial.checkpointPath = serialCkpt;
    EXPECT_EQ(runJson(cell.cfg, cell.workload, serial), coldJson);

    RunOptions sharded;
    sharded.shards = cell.shards;
    sharded.checkpointAt = cut;
    sharded.checkpointPath = shardCkpt;
    EXPECT_EQ(runJson(cell.cfg, cell.workload, sharded), coldJson);

    const std::string serialBytes = readFileBytes(serialCkpt);
    ASSERT_FALSE(serialBytes.empty());
    EXPECT_EQ(serialBytes, readFileBytes(shardCkpt))
        << "MBCKPT1 snapshots diverged between shard counts";

    // Cross-restore: sharded snapshot into a serial engine and the serial
    // snapshot into a sharded engine.
    RunOptions restoreSerial;
    restoreSerial.shards = 1;
    restoreSerial.restorePath = shardCkpt;
    EXPECT_EQ(runJson(cell.cfg, cell.workload, restoreSerial), coldJson);

    RunOptions restoreSharded;
    restoreSharded.shards = cell.shards;
    restoreSharded.restorePath = serialCkpt;
    EXPECT_EQ(runJson(cell.cfg, cell.workload, restoreSharded), coldJson);

    std::remove(serialCkpt.c_str());
    std::remove(shardCkpt.c_str());
  }
}

// Adversarial: one channel. The pool never engages (workers clamp to
// channel count), and every shard value must reproduce the serial bytes.
TEST(ShardDifferential, SingleChannelSystemIsShardInvariant) {
  SystemConfig cfg;  // SingleSpec default: one populated controller (§VI-A)
  cfg.core.maxInstrs = 6000;
  const auto wl = WorkloadSpec::spec("429.mcf");
  ASSERT_EQ(resolvedChannels(cfg, wl), 1);
  RunOptions serial;
  const std::string serialJson = runJson(cfg, wl, serial);
  for (const int shards : {2, 8}) {
    RunOptions opts;
    opts.shards = shards;
    EXPECT_EQ(runJson(cfg, wl, opts), serialJson) << "shards=" << shards;
  }
}

// Adversarial: more shards than channels — the worker pool clamps to one
// thread per channel and the result must not move.
TEST(ShardDifferential, MoreShardsThanChannelsClampsCleanly) {
  SystemConfig cfg;
  cfg.channels = 2;
  cfg.hier.numCores = 8;
  cfg.hier.coresPerCluster = 4;
  cfg.core.maxInstrs = 4000;
  const auto wl = WorkloadSpec::mt(trace::MtKind::Fft);
  RunOptions serial;
  const std::string serialJson = runJson(cfg, wl, serial);
  RunOptions over;
  over.shards = 64;  // 32x the channel count
  EXPECT_EQ(runJson(cfg, wl, over), serialJson);
}

// Adversarial: a workload whose traffic collapses onto one cache line — one
// cold DRAM miss total, so all but one channel see ZERO requests for the
// whole run and their windows are permanently empty. The engine must drain
// cleanly and identically at every shard count.
TEST(ShardDifferential, ZeroRequestChannelsDrainIdentically) {
  const std::string prefix = ::testing::TempDir() + "mb_sdiff_zero";
  const int cores = 4;
  for (int c = 0; c < cores; ++c) {
    trace::TraceFileWriter w(prefix + "." + std::to_string(c) + ".mbt");
    for (int r = 0; r < 32; ++r) {
      trace::Record rec;
      rec.gapInstrs = 40;
      rec.addr = 0x40;  // every core, every record: the same line
      w.append(rec);
    }
  }
  SystemConfig cfg;
  cfg.channels = 4;  // multi-channel system, single-line traffic
  cfg.specCopies = cores;
  cfg.core.maxInstrs = 2000;
  const auto wl = WorkloadSpec::traceFiles(prefix);
  RunOptions serial;
  const RunResult cold = runSimulation(cfg, wl, serial);
  EXPECT_LE(cold.dramReads + cold.dramWrites, 2)
      << "expected (near) zero DRAM traffic from a one-line trace";
  const std::string serialJson = runResultToJson(cold);
  for (const int shards : {2, 4}) {
    RunOptions opts;
    opts.shards = shards;
    EXPECT_EQ(runJson(cfg, wl, opts), serialJson) << "shards=" << shards;
  }
  for (int c = 0; c < cores; ++c)
    std::remove((prefix + "." + std::to_string(c) + ".mbt").c_str());
}

}  // namespace
}  // namespace mb::sim
