#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

namespace mb::sim {
namespace {

TEST(Configs, TsiBaselineShape) {
  const auto cfg = tsiBaselineConfig();
  EXPECT_EQ(cfg.phy, interface::PhyKind::LpddrTsi);
  EXPECT_EQ(cfg.ubank.nW, 1);
  EXPECT_EQ(cfg.ubank.nB, 1);
  EXPECT_EQ(cfg.pagePolicy, core::PolicyKind::Open);
  EXPECT_EQ(cfg.scheduler, mc::SchedulerKind::ParBs);
}

TEST(Configs, Ddr3PcbDiffersOnlyInPhy) {
  const auto cfg = ddr3PcbConfig();
  EXPECT_EQ(cfg.phy, interface::PhyKind::Ddr3Pcb);
  EXPECT_EQ(cfg.pagePolicy, core::PolicyKind::Open);
}

TEST(SlicePresets, FullIsLargerThanFast) {
  EXPECT_GT(sliceInstructions(SlicePreset::Full, false),
            sliceInstructions(SlicePreset::Fast, false));
  EXPECT_GT(sliceInstructions(SlicePreset::Full, true),
            sliceInstructions(SlicePreset::Fast, true));
}

TEST(SlicePresets, EnvOverride) {
  setenv("MB_SLICE", "full", 1);
  EXPECT_EQ(slicePresetFromEnv(), SlicePreset::Full);
  setenv("MB_SLICE", "fast", 1);
  EXPECT_EQ(slicePresetFromEnv(), SlicePreset::Fast);
  unsetenv("MB_SLICE");
  EXPECT_EQ(slicePresetFromEnv(), SlicePreset::Fast);
  EXPECT_EQ(slicePresetFromEnv(SlicePreset::Full), SlicePreset::Full);
}

TEST(SlicePresetsDeath, RejectsUnrecognizedValue) {
  // A typo must not silently fall back and change every reported number.
  setenv("MB_SLICE", "ful", 1);
  EXPECT_EXIT((void)slicePresetFromEnv(), testing::ExitedWithCode(2), "MB_SLICE");
  setenv("MB_SLICE", "FAST", 1);
  EXPECT_EXIT((void)slicePresetFromEnv(), testing::ExitedWithCode(2), "FAST");
  unsetenv("MB_SLICE");
}

TEST(ApplySlice, SetsCoreBudget) {
  SystemConfig cfg;
  applySlice(cfg, SlicePreset::Fast, false);
  EXPECT_EQ(cfg.core.maxInstrs, sliceInstructions(SlicePreset::Fast, false));
}

TEST(Ratios, RatioAndMeanRatio) {
  RunResult a, b, c, d;
  a.systemIpc = 2.0;
  b.systemIpc = 1.0;
  c.systemIpc = 3.0;
  d.systemIpc = 2.0;
  EXPECT_DOUBLE_EQ(ratio(a, b, ipcOf), 2.0);
  EXPECT_DOUBLE_EQ(meanRatio({a, c}, {b, d}, ipcOf), (2.0 + 1.5) / 2.0);
}

TEST(RatiosDeath, ZeroBaselineAborts) {
  RunResult a, b;
  a.systemIpc = 1.0;
  b.systemIpc = 0.0;
  EXPECT_DEATH((void)ratio(a, b, ipcOf), "check failed");
}

TEST(Ratios, ZeroBaselineIsDiagnosedNotInf) {
  RunResult a, b;
  a.systemIpc = 1.0;
  a.workload = "429.mcf";
  b.systemIpc = 0.0;
  b.workload = "429.mcf";
  analysis::DiagnosticEngine diags;
  const double r = ratio(a, b, ipcOf, &diags);
  EXPECT_TRUE(std::isnan(r));
  ASSERT_TRUE(diags.hasErrors());
  ASSERT_EQ(diags.diagnostics().size(), 1u);
  EXPECT_EQ(diags.diagnostics()[0].code, "MB-EXP-001");
}

TEST(Ratios, MeanRatioExcludesDiagnosedPairs) {
  RunResult t1, t2, b1, b2;
  t1.systemIpc = 2.0;
  b1.systemIpc = 1.0;
  t2.systemIpc = 3.0;
  b2.systemIpc = 0.0;  // degenerate pair: diagnosed, excluded from the mean
  b2.workload = "dead.app";
  analysis::DiagnosticEngine diags;
  const double m = meanRatio({t1, t2}, {b1, b2}, ipcOf, &diags);
  EXPECT_DOUBLE_EQ(m, 2.0);  // not inf: the bad pair did not poison the mean
  EXPECT_TRUE(diags.hasErrors());
  EXPECT_EQ(diags.count(analysis::Severity::Error), 1);
}

TEST(Ratios, MeanRatioAllPairsDegenerateIsZero) {
  RunResult t, b;
  t.systemIpc = 1.0;
  b.systemIpc = 0.0;
  analysis::DiagnosticEngine diags;
  EXPECT_DOUBLE_EQ(meanRatio({t}, {b}, ipcOf, &diags), 0.0);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Axes, SweepAxisIsPaper5x5) {
  EXPECT_EQ(sweepAxis(), (std::vector<int>{1, 2, 4, 8, 16}));
}

TEST(Axes, RepresentativeConfigsMatchFig10) {
  const auto cfgs = representativeConfigs();
  ASSERT_EQ(cfgs.size(), 4u);
  EXPECT_EQ(cfgs[0].label, "(1,1)");
  EXPECT_EQ(cfgs[1].nW, 2);
  EXPECT_EQ(cfgs[1].nB, 8);
  EXPECT_EQ(cfgs[3].nW, 8);
  EXPECT_EQ(cfgs[3].nB, 2);
}

TEST(RunSpecGroup, RunsWholeGroup) {
  SystemConfig cfg = tsiBaselineConfig();
  cfg.core.maxInstrs = 8000;
  const auto results = runSpecGroup(trace::SpecGroup::Low, cfg);
  EXPECT_EQ(results.size(), 10u);
  for (const auto& r : results) EXPECT_GT(r.systemIpc, 0.0);
}

}  // namespace
}  // namespace mb::sim
