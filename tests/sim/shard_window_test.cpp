// ShardedEngine window mechanics, driven by a scripted two-channel fixture
// (no controllers, no cores — bare queues and hand-posted messages):
//
//  * completions posted AT the lookahead horizon and one tick AFTER it are
//    buffered and merged into the CPU queue in stamp order, never reordered
//    by which worker ran which channel or by the pool size;
//  * a completion one tick BEFORE the horizon — i.e. a lookahead larger than
//    the real channel → CPU latency — is an MB_CHECK failure, on both the
//    inline path and through a worker thread (the ferried-exception path);
//  * a window where channels have zero events (pure CPU work) drains
//    cleanly, as does an entirely empty channel side.
//
// Logs are split per queue (cpuLog is main-thread-only, chLog[c] is written
// only by channel c's executing thread), so the fixture itself is race-free
// under a worker pool and the cross-thread property under test — the CPU
// merge order — is exactly what cpuLog records.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "sim/shard.hpp"

namespace mb::sim {
namespace {

constexpr Tick kLookahead = 10;

/// Two channel queues + one CPU queue wired to a ShardedEngine.
struct Fixture {
  explicit Fixture(int workers) {
    cpu.setShardId(2);
    ch[0] = std::make_unique<EventQueue>();
    ch[1] = std::make_unique<EventQueue>();
    ch[0]->setShardId(0);
    ch[1]->setShardId(1);
    ShardEngineOptions opts;
    opts.lookahead = kLookahead;
    opts.workers = workers;
    engine = std::make_unique<ShardedEngine>(
        cpu, std::vector<EventQueue*>{ch[0].get(), ch[1].get()}, opts);
  }

  /// Channel event at `when` that posts a completion due `due`. The channel
  /// log records the post; the CPU log records the delivery.
  void channelPostsCompletion(int c, Tick when, Tick due, const std::string& tag) {
    EventQueue& q = *ch[c];
    ch[c]->scheduleAt(when, [this, c, due, tag, &q] {
      chLog[c].push_back("post." + tag + "@" + std::to_string(q.now()));
      engine->postCompletion(c, due, q.issueStamp(),
                             mc::CompletionFn([this, tag](Tick at) {
                               cpuLog.push_back("done." + tag + "@" +
                                                std::to_string(at));
                             }));
    });
  }

  void run() {
    engine->run(-1, [] {}, [] { return false; });
  }

  EventQueue cpu;
  std::unique_ptr<EventQueue> ch[2];
  std::unique_ptr<ShardedEngine> engine;
  std::vector<std::string> cpuLog;
  std::vector<std::string> chLog[2];
};

struct ScriptResult {
  std::vector<std::string> cpuLog;
  std::vector<std::string> chLog0;
  std::vector<std::string> chLog1;
  bool operator==(const ScriptResult& o) const {
    return cpuLog == o.cpuLog && chLog0 == o.chLog0 && chLog1 == o.chLog1;
  }
};

ScriptResult scriptAtAndPastHorizon(int workers) {
  Fixture f(workers);
  // Window 1 is [0, 10): both channels fire at ticks 0..2 and post
  // completions landing exactly ON the horizon (due 10) and past it
  // (due 11, 25). Equal-due completions from both channels probe the
  // cross-channel merge tiebreak.
  f.channelPostsCompletion(0, 0, 10, "a0");   // at horizon, channel 0
  f.channelPostsCompletion(1, 0, 10, "a1");   // at horizon, channel 1: same due
  f.channelPostsCompletion(1, 1, 11, "b1");
  f.channelPostsCompletion(0, 2, 25, "c0");   // beyond the NEXT window too
  f.run();
  return ScriptResult{f.cpuLog, f.chLog[0], f.chLog[1]};
}

TEST(ShardWindow, CompletionsAtAndPastHorizonMergeInStampOrder) {
  const ScriptResult r = scriptAtAndPastHorizon(1);
  // CPU deliveries in stamp order: equal due 10 → equal counters → channel
  // index breaks the tie, so a0 strictly precedes a1 by construction.
  const std::vector<std::string> cpuExpect = {
      "done.a0@10", "done.a1@10", "done.b1@11", "done.c0@25"};
  EXPECT_EQ(r.cpuLog, cpuExpect);
  EXPECT_EQ(r.chLog0, (std::vector<std::string>{"post.a0@0", "post.c0@2"}));
  EXPECT_EQ(r.chLog1, (std::vector<std::string>{"post.a1@0", "post.b1@1"}));
}

TEST(ShardWindow, WorkerPoolCannotReorderTheMerge) {
  const ScriptResult serial = scriptAtAndPastHorizon(1);
  for (int trial = 0; trial < 20; ++trial)  // rescheduling jitter across runs
    EXPECT_TRUE(scriptAtAndPastHorizon(2) == serial) << "trial " << trial;
}

TEST(ShardWindow, CompletionOneTickInsideHorizonIsCaughtInline) {
  ScopedCheckTrap trap;
  try {
    Fixture f(1);
    f.channelPostsCompletion(0, 0, kLookahead - 1, "bad");  // due 9 < t1 10
    f.run();
    FAIL() << "lookahead violation not detected";
  } catch (const CheckFailure& e) {
    EXPECT_NE(e.message.find("lookahead"), std::string::npos) << e.message;
  }
}

TEST(ShardWindow, CompletionOneTickInsideHorizonIsCaughtThroughWorkers) {
  ScopedCheckTrap trap;
  try {
    Fixture f(2);
    // Both channels busy in the same window, so the pool engages and the
    // failure crosses the barrier as a ferried exception.
    f.channelPostsCompletion(0, 0, kLookahead + 5, "ok");
    f.channelPostsCompletion(1, 1, kLookahead - 1, "bad");
    f.run();
    FAIL() << "lookahead violation not detected through the worker pool";
  } catch (const CheckFailure& e) {
    EXPECT_NE(e.message.find("lookahead"), std::string::npos) << e.message;
  }
}

TEST(ShardWindow, PureCpuWindowsDrainWithIdleChannels) {
  for (const int workers : {1, 2}) {
    Fixture f(workers);
    // CPU-only work spanning several windows; channels never see an event.
    for (Tick t : {Tick{0}, Tick{7}, Tick{23}})
      f.cpu.scheduleAt(t, [&f, t] {
        f.cpuLog.push_back("tick@" + std::to_string(t));
      });
    f.run();
    const std::vector<std::string> expect = {"tick@0", "tick@7", "tick@23"};
    EXPECT_EQ(f.cpuLog, expect) << "workers=" << workers;
    EXPECT_EQ(f.engine->processedCount(), 3u);
    EXPECT_EQ(f.engine->maxNow(), 23);
  }
}

TEST(ShardWindow, ZeroEventsAnywhereReturnsImmediately) {
  Fixture f(2);
  f.run();  // minNextTime() == kTickNever on the first window
  EXPECT_TRUE(f.cpuLog.empty());
  EXPECT_EQ(f.engine->processedCount(), 0u);
}

// One busy channel runs inline even with a pool armed (cheaper than the
// barrier); the adaptive choice must not change what executes.
TEST(ShardWindow, SingleBusyChannelWindowMatchesSerial) {
  auto script = [](int workers) {
    Fixture f(workers);
    f.channelPostsCompletion(0, 0, 15, "solo");
    f.channelPostsCompletion(0, 3, 30, "later");
    f.run();
    return ScriptResult{f.cpuLog, f.chLog[0], f.chLog[1]};
  };
  EXPECT_TRUE(script(2) == script(1));
}

}  // namespace
}  // namespace mb::sim
