// Checkpoint/restore correctness: a restored run must be BIT-identical to
// the cold run that produced the snapshot — same instruction counts, same
// tick-resolution elapsed time, same energy down to the last double bit —
// for every shipped preset. Also covers the semantic rejection codes the
// restore orchestrator owns (MB-CKP-004/005/009/010/012) and the
// warmup-snapshot reuse path the sweep engine builds on.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>

#include "ckpt/snapshot.hpp"
#include "common/check.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"

namespace mb::sim {
namespace {

/// Bitwise double equality: NaN-safe, distinguishes -0.0 from +0.0. Restore
/// equivalence is exact replay, so approximate comparison would hide bugs.
::testing::AssertionResult bitEq(const char* aExpr, const char* bExpr, double a,
                                 double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b))
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << aExpr << " and " << bExpr << " differ bitwise: " << a << " vs " << b;
}
#define EXPECT_BITEQ(a, b) EXPECT_PRED_FORMAT2(bitEq, a, b)

void expectBitIdentical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_BITEQ(a.systemIpc, b.systemIpc);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_BITEQ(a.energy.processor, b.energy.processor);
  EXPECT_BITEQ(a.energy.dramActPre, b.energy.dramActPre);
  EXPECT_BITEQ(a.energy.dramStatic, b.energy.dramStatic);
  EXPECT_BITEQ(a.energy.dramRdWr, b.energy.dramRdWr);
  EXPECT_BITEQ(a.energy.io, b.energy.io);
  EXPECT_BITEQ(a.invEdp, b.invEdp);
  EXPECT_BITEQ(a.rowHitRate, b.rowHitRate);
  EXPECT_BITEQ(a.predictorHitRate, b.predictorHitRate);
  EXPECT_BITEQ(a.avgQueueOccupancy, b.avgQueueOccupancy);
  EXPECT_BITEQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
  EXPECT_BITEQ(a.dataBusUtilization, b.dataBusUtilization);
  EXPECT_EQ(a.dramReads, b.dramReads);
  EXPECT_EQ(a.dramWrites, b.dramWrites);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_BITEQ(a.mapki, b.mapki);
  EXPECT_EQ(a.hierarchy.accesses, b.hierarchy.accesses);
  EXPECT_EQ(a.hierarchy.l1Hits, b.hierarchy.l1Hits);
  EXPECT_EQ(a.hierarchy.l2Hits, b.hierarchy.l2Hits);
  EXPECT_EQ(a.hierarchy.dramReads, b.hierarchy.dramReads);
  EXPECT_EQ(a.hierarchy.dramWrites, b.hierarchy.dramWrites);
  EXPECT_EQ(a.hierarchy.c2cTransfers, b.hierarchy.c2cTransfers);
  EXPECT_EQ(a.hierarchy.invalidations, b.hierarchy.invalidations);
  EXPECT_EQ(a.hierarchy.upgrades, b.hierarchy.upgrades);
  EXPECT_EQ(a.hierarchy.prefetchIssued, b.hierarchy.prefetchIssued);
  EXPECT_EQ(a.hierarchy.prefetchUseful, b.hierarchy.prefetchUseful);
  ASSERT_EQ(a.coreIpc.size(), b.coreIpc.size());
  for (std::size_t i = 0; i < a.coreIpc.size(); ++i)
    EXPECT_BITEQ(a.coreIpc[i], b.coreIpc[i]);
}

SystemConfig presetFast(const NamedConfig& preset) {
  SystemConfig cfg = preset.cfg;
  cfg.core.maxInstrs = 15000;
  return cfg;
}

// Satellite: two back-to-back runs of the same configuration must agree
// bitwise — the simulator is deterministic for every shipped preset, which
// is the property checkpoint/restore and sweep resume both stand on.
TEST(Determinism, BackToBackRunsBitIdentical) {
  const auto workload = WorkloadSpec::spec("429.mcf");
  for (const auto& preset : shippedPresets()) {
    SCOPED_TRACE(preset.name);
    const SystemConfig cfg = presetFast(preset);
    const RunResult a = runSimulation(cfg, workload);
    const RunResult b = runSimulation(cfg, workload);
    expectBitIdentical(a, b);
  }
}

// Tentpole acceptance: for every shipped preset, (1) a run that writes a
// mid-flight checkpoint is unperturbed by doing so, and (2) a run restored
// from that checkpoint finishes bit-identical to the cold run.
TEST(Checkpoint, RestoreEquivalentForEveryPreset) {
  const auto workload = WorkloadSpec::spec("429.mcf");
  for (const auto& preset : shippedPresets()) {
    SCOPED_TRACE(preset.name);
    const SystemConfig cfg = presetFast(preset);
    const RunResult cold = runSimulation(cfg, workload);
    ASSERT_GT(cold.elapsed, 0);

    const std::string path = ::testing::TempDir() + "mb_ckpt_" + preset.name + ".mbk";
    RunOptions save;
    save.checkpointAt = cold.elapsed / 2;
    save.checkpointPath = path;
    const RunResult saver = runSimulation(cfg, workload, save);
    expectBitIdentical(cold, saver);  // checkpointing must not perturb the run

    RunOptions load;
    load.restorePath = path;
    const RunResult restored = runSimulation(cfg, workload, load);
    expectBitIdentical(cold, restored);
    std::remove(path.c_str());
  }
}

TEST(Checkpoint, PastEndCheckpointRestoresFinalState) {
  const auto workload = WorkloadSpec::spec("429.mcf");
  const SystemConfig cfg = presetFast(shippedPresets().front());
  const RunResult cold = runSimulation(cfg, workload);

  const std::string path = ::testing::TempDir() + "mb_ckpt_final.mbk";
  RunOptions save;
  save.checkpointAt = cold.elapsed * 10;  // never reached mid-run
  save.checkpointPath = path;
  const RunResult saver = runSimulation(cfg, workload, save);
  expectBitIdentical(cold, saver);

  // The post-loop flush captured the final state; restoring it resumes into
  // immediate completion with the same report.
  RunOptions load;
  load.restorePath = path;
  const RunResult restored = runSimulation(cfg, workload, load);
  expectBitIdentical(cold, restored);
  std::remove(path.c_str());
}

/// Run a restore under a check trap and return the failure text.
std::string restoreFailure(const SystemConfig& cfg, const WorkloadSpec& workload,
                           const std::string& path) {
  ScopedCheckTrap trap;
  try {
    RunOptions load;
    load.restorePath = path;
    (void)runSimulation(cfg, workload, load);
  } catch (const CheckFailure& f) {
    return f.message;
  }
  return "";
}

/// Write a full-run checkpoint of (cfg, workload) at half distance.
std::string writeCheckpoint(const SystemConfig& cfg, const WorkloadSpec& workload,
                            const std::string& path) {
  const RunResult cold = runSimulation(cfg, workload);
  RunOptions save;
  save.checkpointAt = cold.elapsed / 2;
  save.checkpointPath = path;
  (void)runSimulation(cfg, workload, save);
  return path;
}

TEST(Checkpoint, RejectsConfigMismatch) {
  const auto workload = WorkloadSpec::spec("429.mcf");
  const SystemConfig cfg = presetFast(shippedPresets().front());
  const std::string path = ::testing::TempDir() + "mb_ckpt_cfgmis.mbk";
  writeCheckpoint(cfg, workload, path);

  SystemConfig other = cfg;
  other.seed += 1;  // any config delta changes the hash
  const std::string msg = restoreFailure(other, workload, path);
  EXPECT_NE(msg.find("MB-CKP-004"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsWarmupSnapshotAsFullRun) {
  const auto workload = WorkloadSpec::spec("429.mcf");
  const SystemConfig cfg = presetFast(shippedPresets().front());
  const std::string path = ::testing::TempDir() + "mb_ckpt_kind.mbk";
  const std::string buf = captureWarmupSnapshot(cfg, workload, 500);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(buf.data(), 1, buf.size(), f), buf.size());
  std::fclose(f);

  const std::string msg = restoreFailure(cfg, workload, path);
  EXPECT_NE(msg.find("MB-CKP-005"), std::string::npos) << msg;
  std::remove(path.c_str());
}

/// Decode `path`, let `mutate` edit the snapshot, re-encode in place. The
/// container CRCs are recomputed by encode(), so only the SEMANTIC checks
/// can reject the result — exactly the codes under test here.
void tamperSnapshot(const std::string& path,
                    void (*mutate)(ckpt::Snapshot&)) {
  analysis::DiagnosticEngine diags;
  auto snap = ckpt::readSnapshotFile(path, diags);
  ASSERT_TRUE(snap.has_value()) << diags.renderText();
  mutate(*snap);
  ASSERT_TRUE(ckpt::writeSnapshotFile(*snap, path, diags)) << diags.renderText();
}

TEST(Checkpoint, RejectsGeometryMismatch) {
  const auto workload = WorkloadSpec::spec("429.mcf");
  const SystemConfig cfg = presetFast(shippedPresets().front());
  const std::string path = ::testing::TempDir() + "mb_ckpt_geom.mbk";
  writeCheckpoint(cfg, workload, path);
  tamperSnapshot(path, [](ckpt::Snapshot& s) { s.geometry.nW += 1; });

  const std::string msg = restoreFailure(cfg, workload, path);
  EXPECT_NE(msg.find("MB-CKP-009"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMissingSection) {
  const auto workload = WorkloadSpec::spec("429.mcf");
  const SystemConfig cfg = presetFast(shippedPresets().front());
  const std::string path = ::testing::TempDir() + "mb_ckpt_missing.mbk";
  writeCheckpoint(cfg, workload, path);
  tamperSnapshot(path, [](ckpt::Snapshot& s) {
    for (std::size_t i = 0; i < s.sections.size(); ++i) {
      if (s.sections[i].name == "HIER") {
        s.sections.erase(s.sections.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
    FAIL() << "checkpoint had no HIER section";
  });

  const std::string msg = restoreFailure(cfg, workload, path);
  EXPECT_NE(msg.find("MB-CKP-010"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMalformedSectionPayload) {
  const auto workload = WorkloadSpec::spec("429.mcf");
  const SystemConfig cfg = presetFast(shippedPresets().front());
  const std::string path = ::testing::TempDir() + "mb_ckpt_payload.mbk";
  writeCheckpoint(cfg, workload, path);
  tamperSnapshot(path, [](ckpt::Snapshot& s) {
    for (auto& sec : s.sections) {
      if (sec.name == "HIER") {
        sec.payload = "not a hierarchy payload";  // container CRCs recomputed
        return;
      }
    }
    FAIL() << "checkpoint had no HIER section";
  });

  const std::string msg = restoreFailure(cfg, workload, path);
  EXPECT_NE(msg.find("MB-CKP-012"), std::string::npos) << msg;
  std::remove(path.c_str());
}

// Warmup snapshot reuse: restoring a captured warmup must be bit-identical
// to replaying the warmup cold — including when the snapshot was captured
// under a DIFFERENT memory-side configuration (that is the whole point:
// one warmup serves every grid cell of a sweep).
TEST(Warmup, SnapshotRestoreMatchesColdWarmup) {
  const auto workload = WorkloadSpec::spec("429.mcf");
  const SystemConfig cfg = presetFast(shippedPresets().front());

  RunOptions cold;
  cold.warmupRecords = 2000;
  const RunResult coldRun = runSimulation(cfg, workload, cold);

  const std::string snap = captureWarmupSnapshot(cfg, workload, 2000);
  RunOptions restored;
  restored.warmupRecords = 2000;
  restored.warmupRestoreBuf = &snap;
  const RunResult restoredRun = runSimulation(cfg, workload, restored);
  expectBitIdentical(coldRun, restoredRun);
}

TEST(Warmup, SnapshotIsReusableAcrossMemoryConfigs) {
  const auto workload = WorkloadSpec::spec("429.mcf");
  const SystemConfig capture = presetFast(shippedPresets().front());

  // A different PHY, partitioning and policy — but the same workload, seed
  // and processor shape, so the warmup key matches.
  SystemConfig other = capture;
  other.phy = interface::PhyKind::Hmc;
  other.ubank = dram::UbankConfig{4, 4};
  other.pagePolicy = core::PolicyKind::Close;
  ASSERT_EQ(warmupKeyHash(capture, workload, 2000),
            warmupKeyHash(other, workload, 2000));

  RunOptions cold;
  cold.warmupRecords = 2000;
  const RunResult coldRun = runSimulation(other, workload, cold);

  const std::string snap = captureWarmupSnapshot(capture, workload, 2000);
  RunOptions restored;
  restored.warmupRecords = 2000;
  restored.warmupRestoreBuf = &snap;
  const RunResult restoredRun = runSimulation(other, workload, restored);
  expectBitIdentical(coldRun, restoredRun);
}

TEST(Warmup, RejectsKeyMismatch) {
  const auto workload = WorkloadSpec::spec("429.mcf");
  const SystemConfig cfg = presetFast(shippedPresets().front());
  const std::string snap = captureWarmupSnapshot(cfg, workload, 1000);

  ScopedCheckTrap trap;
  try {
    RunOptions opts;
    opts.warmupRecords = 2000;  // captured length was 1000: key differs
    opts.warmupRestoreBuf = &snap;
    (void)runSimulation(cfg, workload, opts);
    FAIL() << "mismatched warmup key accepted";
  } catch (const CheckFailure& f) {
    EXPECT_NE(f.message.find("MB-CKP-005"), std::string::npos) << f.message;
  }
}

}  // namespace
}  // namespace mb::sim
