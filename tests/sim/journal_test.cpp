// Sweep-journal tests: exact JSONL round-trips (doubles bitwise, via
// %.17g/strtod), torn-write tolerance, identity enforcement, and the
// headline property — a resumed sweep is bit-identical to an
// uninterrupted one, including under per-point reseeding.
#include "sim/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace mb::sim {
namespace {

/// runResultToJson prints every double with %.17g, which is injective on
/// finite doubles — so equal JSON means bitwise-equal results and vice
/// versa. That makes string comparison an exact equivalence check.
void expectSameResult(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(runResultToJson(a), runResultToJson(b));
}

RunResult awkwardResult() {
  RunResult r;
  r.workload = "odd \"quoted\" workload\\path";
  r.systemIpc = 1.0 / 3.0;       // not exactly representable in decimal
  r.elapsed = 123456789012345;
  r.instructions = 40000;
  r.energy.processor = 1e-300;   // subnormal territory round-trips too
  r.energy.dramActPre = -0.0;    // sign of zero survives
  r.energy.dramStatic = 6.02214076e23;
  r.energy.dramRdWr = 0.1;
  r.energy.io = 2.5;
  r.invEdp = 9.869604401089358e-13;
  r.rowHitRate = 0.30000000000000004;
  r.mapki = 17.5;
  r.dramReads = 1;
  r.dramWrites = 0;
  r.activations = 3;
  r.hierarchy.accesses = 123;
  r.hierarchy.prefetchUseful = 7;
  r.coreIpc = {1.0 / 7.0, 0.25, 1e-9};
  return r;
}

JournalHeader sampleHeader(std::size_t points) {
  JournalHeader h;
  h.tool = "microbank test";
  h.workload = "429.mcf";
  h.points = points;
  h.reseed = true;
  h.sweepHash = 0xABCDEF0123456789ull;
  return h;
}

TEST(Journal, WriteReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "mb_journal_rt.jsonl";
  {
    JournalWriter w(path, sampleHeader(3));
    ASSERT_TRUE(w.ok());
    SweepOutcome ok;
    ok.index = 2;
    ok.label = "tsi-ubank(4,4)";
    ok.ok = true;
    ok.result = awkwardResult();
    w.append(ok);
    SweepOutcome bad;
    bad.index = 0;
    bad.label = "ddr3-pcb";
    bad.ok = false;
    bad.error = "check failed: queue overflow \"quoted\"";
    w.append(bad);
  }

  std::string err;
  const auto data = readJournal(path, &err);
  ASSERT_TRUE(data.has_value()) << err;
  EXPECT_EQ(data->header.tool, "microbank test");
  EXPECT_EQ(data->header.workload, "429.mcf");
  EXPECT_EQ(data->header.points, 3u);
  EXPECT_TRUE(data->header.reseed);
  EXPECT_EQ(data->header.sweepHash, 0xABCDEF0123456789ull);
  ASSERT_EQ(data->outcomes.size(), 2u);
  EXPECT_EQ(data->outcomes[0].index, 2u);
  EXPECT_EQ(data->outcomes[0].label, "tsi-ubank(4,4)");
  ASSERT_TRUE(data->outcomes[0].ok);
  expectSameResult(data->outcomes[0].result, awkwardResult());
  EXPECT_EQ(data->outcomes[1].index, 0u);
  ASSERT_FALSE(data->outcomes[1].ok);
  EXPECT_EQ(data->outcomes[1].error, "check failed: queue overflow \"quoted\"");
  std::remove(path.c_str());
}

TEST(Journal, TornFinalLineIsSkipped) {
  const std::string path = ::testing::TempDir() + "mb_journal_torn.jsonl";
  {
    JournalWriter w(path, sampleHeader(2));
    ASSERT_TRUE(w.ok());
    SweepOutcome ok;
    ok.index = 0;
    ok.label = "a";
    ok.ok = true;
    ok.result = awkwardResult();
    w.append(ok);
  }
  {
    // Simulate a crash mid-append: a partial line with no newline.
    std::ofstream f(path, std::ios::app | std::ios::binary);
    f << "{\"point\":1,\"label\":\"b\",\"ok\":true,\"result\":{\"sys";
  }
  std::string err;
  const auto data = readJournal(path, &err);
  ASSERT_TRUE(data.has_value()) << err;
  ASSERT_EQ(data->outcomes.size(), 1u);  // the torn line is simply dropped
  EXPECT_EQ(data->outcomes[0].label, "a");
  std::remove(path.c_str());
}

TEST(Journal, RejectsForeignFile) {
  const std::string path = ::testing::TempDir() + "mb_journal_bad.jsonl";
  {
    std::ofstream f(path, std::ios::binary);
    f << "not a journal at all\n";
  }
  std::string err;
  EXPECT_FALSE(readJournal(path, &err).has_value());
  EXPECT_FALSE(err.empty());
  std::remove(path.c_str());

  err.clear();
  EXPECT_FALSE(readJournal("/nonexistent/journal.jsonl", &err).has_value());
  EXPECT_FALSE(err.empty());
}

std::vector<SweepPoint> smallSweep() {
  const auto workload = WorkloadSpec::spec("429.mcf");
  std::vector<SweepPoint> points;
  for (int nw : {1, 2, 4}) {
    SystemConfig cfg = tsiBaselineConfig();
    cfg.core.maxInstrs = 8000;
    cfg.ubank = dram::UbankConfig{nw, 1};
    points.push_back({"nw" + std::to_string(nw), cfg, workload});
  }
  return points;
}

void expectSameOutcomes(const std::vector<SweepOutcome>& a,
                        const std::vector<SweepOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].label);
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].label, b[i].label);
    ASSERT_EQ(a[i].ok, b[i].ok);
    if (a[i].ok) expectSameResult(a[i].result, b[i].result);
  }
}

// The headline property: interrupt a journaled sweep after a prefix of its
// points, resume it, and the merged outcomes are bit-identical to one
// uninterrupted run — with reseeding ON, so the original point indices
// (not the filtered positions) must drive the per-point seed fold.
TEST(Journal, ResumedSweepBitIdenticalToFresh) {
  const auto points = smallSweep();
  SweepOptions opts;
  opts.jobs = 2;
  opts.reseedPoints = true;
  opts.progress = false;

  const std::string fresh = ::testing::TempDir() + "mb_journal_fresh.jsonl";
  std::string err;
  const auto full = runSweepJournaled("429.mcf", points, opts, fresh, false, &err);
  ASSERT_TRUE(full.has_value()) << err;
  ASSERT_EQ(full->size(), points.size());
  for (const auto& o : *full) EXPECT_TRUE(o.ok) << o.label << ": " << o.error;

  // Build the "interrupted" journal: the header plus the first recorded
  // point line (whatever finished first), as a crash would leave behind.
  std::vector<std::string> lines;
  {
    std::ifstream f(fresh, std::ios::binary);
    std::string line;
    while (std::getline(f, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), points.size() + 1);
  const std::string interrupted = ::testing::TempDir() + "mb_journal_part.jsonl";
  {
    std::ofstream f(interrupted, std::ios::binary);
    f << lines[0] << '\n' << lines[1] << '\n';
  }

  const auto resumed =
      runSweepJournaled("429.mcf", points, opts, interrupted, true, &err);
  ASSERT_TRUE(resumed.has_value()) << err;
  expectSameOutcomes(*full, *resumed);

  // After resume the journal is complete: resuming AGAIN replays everything
  // and runs nothing, with the same merged outcomes.
  const auto replayed =
      runSweepJournaled("429.mcf", points, opts, interrupted, true, &err);
  ASSERT_TRUE(replayed.has_value()) << err;
  expectSameOutcomes(*full, *replayed);

  std::remove(fresh.c_str());
  std::remove(interrupted.c_str());
}

TEST(Journal, ResumeRejectsDifferentSweep) {
  const auto points = smallSweep();
  SweepOptions opts;
  opts.jobs = 2;
  opts.progress = false;

  const std::string path = ::testing::TempDir() + "mb_journal_ident.jsonl";
  std::string err;
  ASSERT_TRUE(
      runSweepJournaled("429.mcf", points, opts, path, false, &err).has_value())
      << err;

  // Same journal, different sweep: a changed seed must be refused.
  auto changed = points;
  for (auto& p : changed) p.cfg.seed += 1;
  EXPECT_FALSE(
      runSweepJournaled("429.mcf", changed, opts, path, true, &err).has_value());
  EXPECT_FALSE(err.empty());

  // ...as must a changed reseed mode with the identical point list.
  SweepOptions reseeded = opts;
  reseeded.reseedPoints = true;
  err.clear();
  EXPECT_FALSE(
      runSweepJournaled("429.mcf", points, reseeded, path, true, &err).has_value());
  EXPECT_FALSE(err.empty());
  std::remove(path.c_str());
}

TEST(Journal, SweepIdentityHashCoversLabelsSeedsAndMode) {
  const auto points = smallSweep();
  const auto base = sweepIdentityHash("429.mcf", points, false);
  EXPECT_NE(base, sweepIdentityHash("429.mcf", points, true));
  EXPECT_NE(base, sweepIdentityHash("TPC-H", points, false));

  auto renamed = points;
  renamed[1].label = "other";
  EXPECT_NE(base, sweepIdentityHash("429.mcf", renamed, false));

  auto reseeded = points;
  reseeded[2].cfg.seed ^= 1;
  EXPECT_NE(base, sweepIdentityHash("429.mcf", reseeded, false));
}

}  // namespace
}  // namespace mb::sim
