#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "sim/experiment.hpp"

namespace mb::sim {
namespace {

// Exact (bitwise for every numeric field) equality of two RunResults: the
// determinism contract is that worker count and completion order change
// nothing at all, so comparisons use ==, never near-tolerances.
void expectIdentical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.systemIpc, b.systemIpc);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.energy.processor, b.energy.processor);
  EXPECT_EQ(a.energy.dramActPre, b.energy.dramActPre);
  EXPECT_EQ(a.energy.dramStatic, b.energy.dramStatic);
  EXPECT_EQ(a.energy.dramRdWr, b.energy.dramRdWr);
  EXPECT_EQ(a.energy.io, b.energy.io);
  EXPECT_EQ(a.invEdp, b.invEdp);
  EXPECT_EQ(a.rowHitRate, b.rowHitRate);
  EXPECT_EQ(a.predictorHitRate, b.predictorHitRate);
  EXPECT_EQ(a.avgQueueOccupancy, b.avgQueueOccupancy);
  EXPECT_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
  EXPECT_EQ(a.dataBusUtilization, b.dataBusUtilization);
  EXPECT_EQ(a.dramReads, b.dramReads);
  EXPECT_EQ(a.dramWrites, b.dramWrites);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.mapki, b.mapki);
  EXPECT_EQ(a.hierarchy.accesses, b.hierarchy.accesses);
  EXPECT_EQ(a.hierarchy.l1Hits, b.hierarchy.l1Hits);
  EXPECT_EQ(a.hierarchy.l2Hits, b.hierarchy.l2Hits);
  EXPECT_EQ(a.hierarchy.dramReads, b.hierarchy.dramReads);
  EXPECT_EQ(a.hierarchy.dramWrites, b.hierarchy.dramWrites);
  EXPECT_EQ(a.hierarchy.prefetchIssued, b.hierarchy.prefetchIssued);
  EXPECT_EQ(a.hierarchy.prefetchUseful, b.hierarchy.prefetchUseful);
  EXPECT_EQ(a.coreIpc, b.coreIpc);
}

/// The seeded 5x5 (nW, nB) grid of the paper's sweeps, on a tiny slice so
/// 25 simulations stay test-sized.
std::vector<SweepPoint> seededGrid(std::uint64_t seed) {
  std::vector<SweepPoint> points;
  for (int nw : sweepAxis()) {
    for (int nb : sweepAxis()) {
      SystemConfig cfg = tsiBaselineConfig();
      cfg.ubank = dram::UbankConfig{nw, nb};
      cfg.core.maxInstrs = 2000;
      cfg.seed = seed;
      points.push_back({"(" + std::to_string(nw) + "," + std::to_string(nb) + ")",
                        cfg, WorkloadSpec::spec("429.mcf")});
    }
  }
  return points;
}

TEST(FoldPointSeed, PureFunctionOfSeedAndIndex) {
  EXPECT_EQ(foldPointSeed(12345, 0), foldPointSeed(12345, 0));
  EXPECT_NE(foldPointSeed(12345, 0), foldPointSeed(12345, 1));
  EXPECT_NE(foldPointSeed(12345, 0), foldPointSeed(54321, 0));
}

TEST(FoldPointSeed, AdjacentIndicesDecorrelate) {
  // Weak-seed robustness: even with baseSeed 0 and consecutive indices, the
  // SplitMix64 fold must yield well-separated 64-bit values.
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 1000; ++i) seen.insert(foldPointSeed(0, i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(ResolveJobs, ExplicitRequestWins) {
  setenv("MB_JOBS", "3", 1);
  EXPECT_EQ(resolveJobs(7), 7);
  unsetenv("MB_JOBS");
}

TEST(ResolveJobs, ReadsEnvWhenUnspecified) {
  setenv("MB_JOBS", "5", 1);
  EXPECT_EQ(resolveJobs(0), 5);
  unsetenv("MB_JOBS");
  EXPECT_GE(resolveJobs(0), 1);
}

TEST(ResolveJobsDeath, RejectsMalformedEnv) {
  setenv("MB_JOBS", "many", 1);
  EXPECT_EXIT((void)resolveJobs(0), testing::ExitedWithCode(2), "MB_JOBS");
  setenv("MB_JOBS", "0", 1);
  EXPECT_EXIT((void)resolveJobs(0), testing::ExitedWithCode(2), "MB_JOBS");
  unsetenv("MB_JOBS");
}

TEST(ScopedCheckTrap, TurnsCheckIntoException) {
  bool caught = false;
  {
    ScopedCheckTrap trap;
    try {
      MB_CHECK_MSG(false, "trapped %d", 42);
    } catch (const CheckFailure& f) {
      caught = true;
      EXPECT_NE(f.message.find("trapped 42"), std::string::npos);
    }
  }
  EXPECT_TRUE(caught);
}

TEST(ScopedCheckTrapDeath, AbortsOutsideTrap) {
  EXPECT_DEATH(MB_CHECK(false), "check failed");
}

TEST(SweepRunner, ParallelIsBitIdenticalToSerial) {
  const auto points = seededGrid(0xfeedULL);
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 8;
  const auto a = SweepRunner(serial).run(points);
  const auto b = SweepRunner(parallel).run(points);
  ASSERT_EQ(a.size(), points.size());
  ASSERT_EQ(b.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(a[i].ok);
    EXPECT_TRUE(b[i].ok);
    EXPECT_EQ(a[i].index, i);
    EXPECT_EQ(b[i].index, i);
    EXPECT_EQ(a[i].label, points[i].label);
    expectIdentical(a[i].result, b[i].result);
  }
}

TEST(SweepRunner, ReseededParallelIsBitIdenticalToSerial) {
  // The seed fold is a pure function of (seed, index), so reseeded sweeps
  // must also be order-independent — and must actually change the runs.
  // Use two replicates of the SAME configuration: with reseedPoints their
  // folded seeds differ, without it they are the same run twice.
  const auto grid = seededGrid(0xfeedULL);
  const std::vector<SweepPoint> points{grid[0], grid[0], grid[0]};
  SweepOptions serial;
  serial.jobs = 1;
  serial.reseedPoints = true;
  SweepOptions parallel;
  parallel.jobs = 8;
  parallel.reseedPoints = true;
  const auto a = SweepRunner(serial).run(points);
  const auto b = SweepRunner(parallel).run(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(a[i].ok && b[i].ok);
    expectIdentical(a[i].result, b[i].result);
  }
  // Distinct folded seeds => the replicates are genuinely independent runs.
  EXPECT_NE(a[0].result.elapsed, a[1].result.elapsed);
  // And without reseeding, replicates of one point are the identical run.
  SweepOptions keep;
  keep.jobs = 8;
  const auto same = SweepRunner(keep).run(points);
  ASSERT_TRUE(same[0].ok && same[1].ok);
  expectIdentical(same[0].result, same[1].result);
}

TEST(SweepRunner, FailingPointIsIsolated) {
  auto points = seededGrid(0xfeedULL);
  points.resize(3);
  // nW=3 is rejected by geometry validation inside runSimulation with an
  // MB_CHECK — under the sweep's per-point trap that must surface as a
  // recorded error on exactly this point, not a process abort.
  points[1].cfg.ubank = dram::UbankConfig{3, 1};
  points[1].label = "broken(3,1)";
  SweepOptions opts;
  opts.jobs = 2;
  const auto outcomes = SweepRunner(opts).run(points);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_NE(outcomes[1].error.find("check failed"), std::string::npos);
  EXPECT_TRUE(outcomes[2].ok);
  // The healthy points are unaffected by their broken neighbor.
  const auto clean = SweepRunner(opts).run({points[0], points[2]});
  expectIdentical(outcomes[0].result, clean[0].result);
  expectIdentical(outcomes[2].result, clean[1].result);
}

TEST(SweepRunnerDeath, RunAllAbortsOnFailureAfterReportingAll) {
  auto points = seededGrid(0xfeedULL);
  points.resize(2);
  points[0].cfg.ubank = dram::UbankConfig{3, 1};
  SweepOptions opts;
  opts.jobs = 2;
  EXPECT_DEATH((void)SweepRunner(opts).runAll(points), "sweep points failed");
}

TEST(SweepRunner, OnProgressReportsMonotoneSerializedCounts) {
  auto points = seededGrid(0x5eedULL);
  points.resize(6);
  SweepOptions opts;
  opts.jobs = 3;
  std::vector<SweepProgress> seen;  // callback is serialized: plain vector
  opts.onProgress = [&seen](const SweepProgress& p) { seen.push_back(p); };
  bool orderHolds = true;
  std::size_t doneAtCallback = 0;
  opts.onPointDone = [&](const SweepOutcome&) { ++doneAtCallback; };
  const auto outcomes = SweepRunner(opts).run(points);
  ASSERT_EQ(seen.size(), points.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    // done counts up 1..N in callback order regardless of which worker
    // finished; total is constant; every reported index is in range.
    orderHolds = orderHolds && seen[i].done == i + 1;
    EXPECT_EQ(seen[i].total, points.size());
    EXPECT_LT(seen[i].index, points.size());
    EXPECT_TRUE(seen[i].ok);
    EXPECT_EQ(seen[i].failed, 0u);
  }
  EXPECT_TRUE(orderHolds);
  // onProgress fires after onPointDone for the same point, so a consumer
  // that persists in onPointDone sees its own write counted.
  EXPECT_EQ(doneAtCallback, points.size());
  for (const auto& o : outcomes) EXPECT_TRUE(o.ok);
}

TEST(SweepRunner, ProgressCountsFailures) {
  auto points = seededGrid(0x5eedULL);
  points.resize(3);
  points[1].cfg.ubank = dram::UbankConfig{3, 1};  // fails inside the run
  SweepOptions opts;
  opts.jobs = 1;
  std::size_t failedAtEnd = 0;
  opts.onProgress = [&](const SweepProgress& p) { failedAtEnd = p.failed; };
  (void)SweepRunner(opts).run(points);
  EXPECT_EQ(failedAtEnd, 1u);
}

TEST(SweepRunner, CancelTokenMarksUnstartedPointsCanceled) {
  auto points = seededGrid(0xabcULL);
  points.resize(8);
  std::atomic<bool> cancel{false};
  SweepOptions opts;
  opts.jobs = 1;  // serial: cancelling after point 2 leaves 3.. unstarted
  opts.cancel = &cancel;
  std::size_t finished = 0;
  opts.onPointDone = [&](const SweepOutcome&) {
    if (++finished == 2) cancel.store(true);
  };
  const auto outcomes = SweepRunner(opts).run(points);
  ASSERT_EQ(outcomes.size(), points.size());
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_TRUE(outcomes[1].ok);
  EXPECT_FALSE(outcomes[0].canceled);
  EXPECT_FALSE(outcomes[1].canceled);
  for (std::size_t i = 2; i < outcomes.size(); ++i) {
    // Canceled points are distinguishable from failed ones (ok=false on
    // both, canceled only here) and slot into their original indices.
    EXPECT_FALSE(outcomes[i].ok) << i;
    EXPECT_TRUE(outcomes[i].canceled) << i;
    EXPECT_EQ(outcomes[i].index, i);
    EXPECT_EQ(outcomes[i].label, points[i].label);
  }
  // Progress still counted every point (canceled ones count as done+failed
  // so a consumer's done/total reaches total and terminates).
}

TEST(SweepRunner, CancelBeforeStartCancelsEverythingQuickly) {
  auto points = seededGrid(0x77ULL);
  points.resize(5);
  std::atomic<bool> cancel{true};  // tripped before run() begins
  SweepOptions opts;
  opts.jobs = 2;
  opts.cancel = &cancel;
  const auto outcomes = SweepRunner(opts).run(points);
  for (const auto& o : outcomes) {
    EXPECT_FALSE(o.ok);
    EXPECT_TRUE(o.canceled);
    EXPECT_NE(o.error.find("canceled"), std::string::npos);
  }
}

TEST(RunSpecGroupParallel, MatchesSerialOverload) {
  SystemConfig cfg = tsiBaselineConfig();
  cfg.core.maxInstrs = 2000;
  const auto serial = runSpecGroup(trace::SpecGroup::Low, cfg);
  const auto parallel = runSpecGroup(trace::SpecGroup::Low, cfg, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    expectIdentical(serial[i], parallel[i]);
}

}  // namespace
}  // namespace mb::sim
