#include "sim/system.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/trace_file.hpp"

namespace mb::sim {
namespace {

SystemConfig fastConfig() {
  SystemConfig cfg;
  cfg.core.maxInstrs = 60000;
  cfg.timingCheck = true;  // every command validated in these tests
  return cfg;
}

TEST(GeometryFor, FollowsPhyRankOrganization) {
  SystemConfig cfg;
  cfg.phy = interface::PhyKind::LpddrTsi;
  EXPECT_EQ(geometryFor(cfg, 16).ranksPerChannel, 4);  // die = rank
  cfg.phy = interface::PhyKind::Ddr3Pcb;
  EXPECT_EQ(geometryFor(cfg, 8).ranksPerChannel, 2);
}

TEST(GeometryFor, UbankPassedThrough) {
  SystemConfig cfg;
  cfg.ubank = {4, 8};
  const auto g = geometryFor(cfg, 4);
  EXPECT_EQ(g.ubank.nW, 4);
  EXPECT_EQ(g.ubank.nB, 8);
  EXPECT_TRUE(g.valid());
}

TEST(RunSimulation, SingleSpecProducesSaneMetrics) {
  const auto r = runSimulation(fastConfig(), WorkloadSpec::spec("462.libquantum"));
  EXPECT_GT(r.systemIpc, 0.0);
  EXPECT_LT(r.systemIpc, 8.0);
  EXPECT_EQ(r.instructions, 4 * 60000);  // four SimPoint-slice copies
  EXPECT_GT(r.elapsed, 0);
  EXPECT_GT(r.dramReads, 0);
  EXPECT_GT(r.energy.total(), 0.0);
  EXPECT_GT(r.invEdp, 0.0);
  EXPECT_GE(r.rowHitRate, 0.0);
  EXPECT_LE(r.rowHitRate, 1.0);
  EXPECT_EQ(r.coreIpc.size(), 4u);
}

TEST(RunSimulation, SingleSpecRunsFourSliceCopies) {
  // §VI-A: top-4 SimPoint slices, one populated memory controller.
  const auto r = runSimulation(fastConfig(), WorkloadSpec::spec("450.soplex"));
  EXPECT_EQ(r.coreIpc.size(), 4u);
  auto one = fastConfig();
  one.specCopies = 1;
  const auto r1 = runSimulation(one, WorkloadSpec::spec("450.soplex"));
  EXPECT_EQ(r1.coreIpc.size(), 1u);
}

TEST(RunSimulation, MeasuredMapkiTracksProfile) {
  // The DRAM-level MAPKI should be in the neighbourhood of the profile's
  // cold-reference intensity (write-allocate fetches and writebacks add to
  // it; caches subtract).
  auto cfg = fastConfig();
  const auto high = runSimulation(cfg, WorkloadSpec::spec("429.mcf"));
  const auto low = runSimulation(cfg, WorkloadSpec::spec("416.gamess"));
  EXPECT_GT(high.mapki, 15.0);
  EXPECT_LT(low.mapki, 3.0);
}

TEST(RunSimulation, IsDeterministic) {
  const auto a = runSimulation(fastConfig(), WorkloadSpec::spec("433.milc"));
  const auto b = runSimulation(fastConfig(), WorkloadSpec::spec("433.milc"));
  EXPECT_DOUBLE_EQ(a.systemIpc, b.systemIpc);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.dramReads, b.dramReads);
  EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(RunSimulation, SeedChangesResults) {
  auto cfg = fastConfig();
  const auto a = runSimulation(cfg, WorkloadSpec::spec("433.milc"));
  cfg.seed = 999;
  const auto b = runSimulation(cfg, WorkloadSpec::spec("433.milc"));
  EXPECT_NE(a.dramReads, b.dramReads);
}

TEST(RunSimulation, MixPopulatesAllCores) {
  auto cfg = fastConfig();
  cfg.hier.numCores = 8;
  cfg.channels = 4;
  cfg.core.maxInstrs = 30000;
  const auto r = runSimulation(cfg, WorkloadSpec::mix("mix-high"));
  EXPECT_EQ(r.coreIpc.size(), 8u);
  for (const double ipc : r.coreIpc) EXPECT_GT(ipc, 0.0);
  EXPECT_EQ(r.instructions, 8 * 30000);
}

TEST(RunSimulation, MultithreadedRuns) {
  auto cfg = fastConfig();
  cfg.hier.numCores = 8;
  cfg.channels = 4;
  cfg.core.maxInstrs = 30000;
  const auto r = runSimulation(cfg, WorkloadSpec::mt(trace::MtKind::Fft));
  EXPECT_EQ(r.coreIpc.size(), 8u);
  EXPECT_GT(r.dramReads, 0);
  EXPECT_EQ(r.workload, "FFT");
}

TEST(RunSimulation, EnergyBreakdownCategoriesAllPresent) {
  const auto r = runSimulation(fastConfig(), WorkloadSpec::spec("470.lbm"));
  EXPECT_GT(r.energy.processor, 0.0);
  EXPECT_GT(r.energy.dramActPre, 0.0);
  EXPECT_GT(r.energy.dramRdWr, 0.0);
  EXPECT_GT(r.energy.io, 0.0);
  EXPECT_GT(r.energy.dramStatic, 0.0);
}

TEST(RunSimulation, PerfectPolicyReportsUnitHitRate) {
  auto cfg = fastConfig();
  cfg.pagePolicy = core::PolicyKind::Perfect;
  const auto r = runSimulation(cfg, WorkloadSpec::spec("429.mcf"));
  EXPECT_DOUBLE_EQ(r.predictorHitRate, 1.0);
}

TEST(RunSimulation, ExtensionOptionsComplete) {
  // Per-bank refresh, activation-window scaling, and the HMC interface are
  // extension features; all must run cleanly under the timing checker.
  {
    auto cfg = fastConfig();
    cfg.perBankRefresh = true;
    EXPECT_GT(runSimulation(cfg, WorkloadSpec::spec("433.milc")).systemIpc, 0.0);
  }
  {
    auto cfg = fastConfig();
    cfg.ubank = {8, 2};
    cfg.scaleActWindowWithRowSize = true;
    EXPECT_GT(runSimulation(cfg, WorkloadSpec::spec("433.milc")).systemIpc, 0.0);
  }
  {
    auto cfg = fastConfig();
    cfg.phy = interface::PhyKind::Hmc;
    EXPECT_GT(runSimulation(cfg, WorkloadSpec::spec("433.milc")).systemIpc, 0.0);
  }
}

TEST(RunSimulation, HmcLinkLatencyShowsUpInReadLatency) {
  auto tsi = fastConfig();
  auto hmc = fastConfig();
  hmc.phy = interface::PhyKind::Hmc;
  const auto rTsi = runSimulation(tsi, WorkloadSpec::spec("429.mcf"));
  const auto rHmc = runSimulation(hmc, WorkloadSpec::spec("429.mcf"));
  // The MC-measured latency excludes the link, but end-to-end IPC reflects
  // the two extra hops: HMC must be slower on a latency-bound app.
  EXPECT_LT(rHmc.systemIpc, rTsi.systemIpc);
}

TEST(RunSimulation, FawScalingNeverHurts) {
  auto base = fastConfig();
  base.ubank = {8, 2};
  auto scaled = base;
  scaled.scaleActWindowWithRowSize = true;
  const auto r0 = runSimulation(base, WorkloadSpec::spec("429.mcf"));
  const auto r1 = runSimulation(scaled, WorkloadSpec::spec("429.mcf"));
  EXPECT_GE(r1.systemIpc, r0.systemIpc * 0.999);
}

TEST(RunSimulation, TraceFileReplayMatchesLiveGenerator) {
  // Record the exact streams the live run would consume, replay them, and
  // expect an identical simulation outcome.
  const std::string prefix = std::string(::testing::TempDir()) + "replay_sys";
  auto cfg = fastConfig();
  cfg.core.maxInstrs = 20000;
  for (int c = 0; c < cfg.specCopies; ++c) {
    trace::SyntheticParams p = trace::specProfile("433.milc").params;
    p.baseAddr = static_cast<std::uint64_t>(c) << 33;
    p.seed = cfg.seed * 1000003 + static_cast<std::uint64_t>(c);
    trace::SyntheticSource src(p);
    // Enough records to cover the instruction budget without wrapping.
    trace::recordTrace(src, trace::traceFilePath(prefix, c), 30000);
  }
  const auto live = runSimulation(cfg, WorkloadSpec::spec("433.milc"));
  const auto replay = runSimulation(cfg, WorkloadSpec::traceFiles(prefix));
  EXPECT_DOUBLE_EQ(replay.systemIpc, live.systemIpc);
  EXPECT_EQ(replay.dramReads, live.dramReads);
  EXPECT_EQ(replay.elapsed, live.elapsed);
  for (int c = 0; c < cfg.specCopies; ++c)
    std::remove(trace::traceFilePath(prefix, c).c_str());
}

TEST(RunSimulation, WorkloadSpecFactories) {
  EXPECT_EQ(WorkloadSpec::spec("x").kind, WorkloadSpec::Kind::SingleSpec);
  EXPECT_EQ(WorkloadSpec::mix("mix-high").kind, WorkloadSpec::Kind::Mix);
  EXPECT_EQ(WorkloadSpec::mt(trace::MtKind::Radix).kind,
            WorkloadSpec::Kind::Multithreaded);
  EXPECT_EQ(WorkloadSpec::mt(trace::MtKind::Radix).name, "RADIX");
}

}  // namespace
}  // namespace mb::sim
