// mbsim — command-line driver for single simulations.
//
// Runs one workload on one configuration and prints a full report, so the
// library can be driven without writing C++:
//
//   mbsim --workload=429.mcf --nw=4 --nb=4
//   mbsim --workload=TPC-H --phy=ddr3-pcb --policy=close --scheduler=frfcfs
//   mbsim --workload=mix-high --instrs=500000 --ib=6 --seed=7
//
// Flags (all optional):
//   --workload=NAME   SPEC app ("429.mcf"), mix ("mix-high"/"mix-blend"),
//                     a kernel ("RADIX"/"FFT"/"canneal"/"TPC-C"/"TPC-H"),
//                     or recorded traces ("trace:PREFIX" -> PREFIX.<core>.mbt,
//                     written by tools/mbtrace)
//   --nw=N --nb=N     μbank partitioning (powers of two, 1..16)
//   --phy=KIND        ddr3-pcb | ddr3-tsi | lpddr-tsi | hmc
//   --policy=KIND     open|close|minimalist|local|global|tournament|perfect
//   --scheduler=KIND  fcfs | frfcfs | parbs
//   --ib=N            interleaving base bit (6 = cache line; default page)
//   --instrs=N        instruction slice per core
//   --queue=N         scheduler-visible request window
//   --seed=N          workload seed
//   --xor-bank-hash   permutation-based bank-index hashing
//   --per-bank-refresh, --no-refresh, --no-prefetch, --timing-check
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/config_lint.hpp"
#include "common/string_util.hpp"
#include "sim/experiment.hpp"

namespace {

using namespace mb;

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "mbsim: %s\n(see the header of tools/mbsim.cpp for flags)\n",
               msg);
  std::exit(2);
}

bool matchFlag(const std::string& arg, const std::string& name, std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (!startsWith(arg, prefix)) return false;
  *value = arg.substr(prefix.size());
  return true;
}

sim::WorkloadSpec workloadByName(const std::string& name) {
  if (startsWith(name, "trace:"))
    return sim::WorkloadSpec::traceFiles(name.substr(6));
  if (name == "mix-high" || name == "mix-blend") return sim::WorkloadSpec::mix(name);
  for (auto kind : {trace::MtKind::Radix, trace::MtKind::Fft, trace::MtKind::Canneal,
                    trace::MtKind::TpcC, trace::MtKind::TpcH}) {
    if (name == trace::mtKindName(kind)) return sim::WorkloadSpec::mt(kind);
  }
  return sim::WorkloadSpec::spec(name);  // validated by the profile lookup
}

}  // namespace

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::tsiBaselineConfig();
  std::string workload = "429.mcf";
  std::string value;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (matchFlag(arg, "workload", &value)) {
      workload = value;
    } else if (matchFlag(arg, "nw", &value)) {
      cfg.ubank.nW = std::atoi(value.c_str());
    } else if (matchFlag(arg, "nb", &value)) {
      cfg.ubank.nB = std::atoi(value.c_str());
    } else if (matchFlag(arg, "phy", &value)) {
      if (value == "ddr3-pcb") cfg.phy = interface::PhyKind::Ddr3Pcb;
      else if (value == "ddr3-tsi") cfg.phy = interface::PhyKind::Ddr3Tsi;
      else if (value == "lpddr-tsi") cfg.phy = interface::PhyKind::LpddrTsi;
      else if (value == "hmc") cfg.phy = interface::PhyKind::Hmc;
      else usage("unknown --phy");
    } else if (matchFlag(arg, "policy", &value)) {
      if (value == "open") cfg.pagePolicy = core::PolicyKind::Open;
      else if (value == "close") cfg.pagePolicy = core::PolicyKind::Close;
      else if (value == "minimalist") cfg.pagePolicy = core::PolicyKind::MinimalistOpen;
      else if (value == "local") cfg.pagePolicy = core::PolicyKind::LocalBimodal;
      else if (value == "global") cfg.pagePolicy = core::PolicyKind::GlobalBimodal;
      else if (value == "tournament") cfg.pagePolicy = core::PolicyKind::Tournament;
      else if (value == "perfect") cfg.pagePolicy = core::PolicyKind::Perfect;
      else usage("unknown --policy");
    } else if (matchFlag(arg, "scheduler", &value)) {
      if (value == "fcfs") cfg.scheduler = mc::SchedulerKind::Fcfs;
      else if (value == "frfcfs") cfg.scheduler = mc::SchedulerKind::FrFcfs;
      else if (value == "parbs") cfg.scheduler = mc::SchedulerKind::ParBs;
      else usage("unknown --scheduler");
    } else if (matchFlag(arg, "ib", &value)) {
      cfg.interleaveBaseBit = std::atoi(value.c_str());
    } else if (matchFlag(arg, "instrs", &value)) {
      cfg.core.maxInstrs = std::atoll(value.c_str());
    } else if (matchFlag(arg, "queue", &value)) {
      cfg.queueDepth = std::atoi(value.c_str());
    } else if (matchFlag(arg, "seed", &value)) {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (arg == "--xor-bank-hash") {
      cfg.xorBankHash = true;
    } else if (arg == "--per-bank-refresh") {
      cfg.perBankRefresh = true;
    } else if (arg == "--no-refresh") {
      cfg.refresh = false;
    } else if (arg == "--no-prefetch") {
      cfg.hier.enablePrefetch = false;
    } else if (arg == "--timing-check") {
      cfg.timingCheck = true;
    } else {
      usage(("unrecognized argument: " + arg).c_str());
    }
  }
  // Pre-flight static analysis: reject an invalid configuration with
  // structured diagnostics before any simulation tick runs.
  {
    analysis::DiagnosticEngine engine;
    analysis::ConfigLinter linter(engine);
    if (!linter.lintSystem(cfg)) {
      std::fprintf(stderr, "mbsim: configuration rejected by mblint rules:\n%s",
                   engine.renderText().c_str());
      return 2;
    }
  }

  auto spec = workloadByName(workload);
  if (spec.kind != sim::WorkloadSpec::Kind::SingleSpec &&
      spec.kind != sim::WorkloadSpec::Kind::TraceFile) {
    const auto phy = interface::PhyModel::make(cfg.phy);
    cfg.hier.numCores = 64;
    cfg.hier.coresPerCluster = 4;
    if (cfg.channels < 0) cfg.channels = phy.channels;
  }

  const auto r = sim::runSimulation(cfg, spec);

  std::printf("workload            %s\n", r.workload.c_str());
  std::printf("phy                 %s\n", interface::phyKindName(cfg.phy).c_str());
  std::printf("ubank (nW,nB)       (%d,%d)\n", cfg.ubank.nW, cfg.ubank.nB);
  std::printf("page policy         %s\n", core::policyKindName(cfg.pagePolicy).c_str());
  std::printf("scheduler           %s\n", mc::schedulerKindName(cfg.scheduler).c_str());
  std::printf("\n");
  std::printf("system IPC          %.3f (%zu cores)\n", r.systemIpc, r.coreIpc.size());
  std::printf("elapsed             %.3f ms\n", toSeconds(r.elapsed) * 1e3);
  std::printf("instructions        %lld\n", static_cast<long long>(r.instructions));
  std::printf("DRAM reads/writes   %lld / %lld (MAPKI %.1f)\n",
              static_cast<long long>(r.dramReads), static_cast<long long>(r.dramWrites),
              r.mapki);
  std::printf("row hit rate        %.3f\n", r.rowHitRate);
  std::printf("predictor hit rate  %.3f\n", r.predictorHitRate);
  std::printf("avg read latency    %.1f ns\n", r.avgReadLatencyNs);
  std::printf("avg queue occupancy %.2f\n", r.avgQueueOccupancy);
  std::printf("data bus util       %.2f\n", r.dataBusUtilization);
  std::printf("prefetch issued     %lld (useful %lld)\n",
              static_cast<long long>(r.hierarchy.prefetchIssued),
              static_cast<long long>(r.hierarchy.prefetchUseful));
  const double sec = toSeconds(r.elapsed);
  std::printf("\nenergy (mJ) / avg power (W):\n");
  auto line = [&](const char* tag, double pj) {
    std::printf("  %-12s %8.3f mJ  %7.3f W\n", tag, pj * 1e-9, pj * 1e-12 / sec);
  };
  line("processor", r.energy.processor);
  line("ACT/PRE", r.energy.dramActPre);
  line("DRAM static", r.energy.dramStatic);
  line("RD/WR", r.energy.dramRdWr);
  line("I/O", r.energy.io);
  line("total", r.energy.total());
  std::printf("\n1/EDP               %.4g (J*s)^-1\n", r.invEdp);
  return 0;
}
