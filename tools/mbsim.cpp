// mbsim — command-line driver for single simulations.
//
// Runs one workload on one configuration and prints a full report, so the
// library can be driven without writing C++:
//
//   mbsim --workload=429.mcf --nw=4 --nb=4
//   mbsim --workload=TPC-H --phy=ddr3-pcb --policy=close --scheduler=frfcfs
//   mbsim --workload=mix-high --instrs=500000 --ib=6 --seed=7
//
// Flags (all optional):
//   --workload=NAME   SPEC app ("429.mcf"), mix ("mix-high"/"mix-blend"),
//                     a kernel ("RADIX"/"FFT"/"canneal"/"TPC-C"/"TPC-H"),
//                     or recorded traces ("trace:PREFIX" -> PREFIX.<core>.mbt,
//                     written by tools/mbtrace)
//   --preset=NAME     start from a shipped preset configuration instead of
//                     the TSI baseline (mblint --list-presets names them);
//                     later flags still override individual knobs
//   --nw=N --nb=N     μbank partitioning (powers of two, 1..16)
//   --phy=KIND        ddr3-pcb | ddr3-tsi | lpddr-tsi | hmc
//   --policy=KIND     open|close|minimalist|local|global|tournament|perfect
//   --scheduler=KIND  fcfs | frfcfs | parbs
//   --ib=N            interleaving base bit (6 = cache line; default page)
//   --instrs=N        instruction slice per core
//   --queue=N         scheduler-visible request window
//   --seed=N          workload seed
//   --xor-bank-hash   permutation-based bank-index hashing
//   --per-bank-refresh, --no-refresh, --no-prefetch, --timing-check
//   --record-cmds=PATH  stream every DRAM command to an MBCMDT1 trace
//                     (offline re-verification: tools/mbaudit). Under
//                     --sweep, one trace per preset: PATH gains a
//                     ".<preset>" suffix before its extension
//   --audit           after the run(s), replay the recorded trace(s)
//                     through the offline auditor and fail (exit 1) on any
//                     MB-AUD violation; implies --record-cmds (default
//                     "mbsim-cmds.mbc" when not given)
//   --shards=N        worker threads inside ONE simulation: the channel-
//                     sharded engine (DESIGN.md §14) distributes memory
//                     channels over N threads. Reports, command traces and
//                     snapshots are byte-identical for every N; the knob
//                     trades threads for wall-clock only
//   --version         print tool + MBTRACE1/MBCMDT1/MBCKPT1 format versions
//
// Checkpoint / restore (MBCKPT1 snapshots, see src/ckpt/snapshot.hpp):
//   --checkpoint-at=PS  capture a full-run snapshot at the first event
//                     boundary at or after PS picoseconds of sim time
//                     (a PS past the end snapshots the final state)
//   --checkpoint=PATH where to write the snapshot (required with
//                     --checkpoint-at); the run continues to completion
//   --restore-from=PATH  skip the cold start: restore the snapshot and
//                     resume — the final report is bit-identical to the
//                     run that produced the snapshot
//   --warmup=N        functional cache warmup: N trace records per core
//                     replayed through the hierarchy before the timed run
//   --warmup-save=PATH  run ONLY the functional warmup and save it as a
//                     reusable warmup snapshot (no timed simulation)
//   --warmup-load=PATH  restore a warmup snapshot (with --warmup=N, which
//                     must match the captured length) instead of replaying
// A mismatched or corrupted snapshot is rejected with a stable MB-CKP-NNN
// diagnostic (registry: DESIGN.md §"Checkpoint & snapshot reuse").
//
// Sweep mode — run the workload over EVERY shipped preset in parallel and
// print one summary row per preset:
//
//   mbsim --sweep --workload=429.mcf --jobs=8
//
//   --sweep           run all shipped presets (tools/mblint --all-presets
//                     lints the same list) through sim::SweepRunner
//   --jobs=N          worker threads (default: MB_JOBS, then hardware
//                     concurrency; 1 = serial, identical output)
//   --reseed          derive each point's seed as foldPointSeed(seed, index)
//                     instead of running every preset with the same seed
//                     (same-seed runs are paired and directly comparable;
//                     reseeded runs are statistically independent)
//   --journal=PATH    stream each completed point to a JSONL journal as it
//                     finishes (crash-safe: every line is flushed)
//   --resume=PATH     re-run an interrupted journaled sweep: completed
//                     points are replayed from the journal, only the rest
//                     run (bit-identical to an uninterrupted sweep); the
//                     journal must match this sweep's preset list, seed
//                     and flags (exit 2 otherwise)
//
// A preset that fails mid-simulation is reported as an ERROR row (exit 1)
// after the rest of the sweep completes — not a process abort.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/config_lint.hpp"
#include "analysis/trace_audit.hpp"
#include "common/check.hpp"
#include "common/string_util.hpp"
#include "common/version.hpp"
#include "sim/experiment.hpp"
#include "sim/journal.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace mb;

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "mbsim: %s\n(see the header of tools/mbsim.cpp for flags)\n",
               msg);
  std::exit(2);
}

bool matchFlag(const std::string& arg, const std::string& name, std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (!startsWith(arg, prefix)) return false;
  *value = arg.substr(prefix.size());
  return true;
}

sim::WorkloadSpec workloadByName(const std::string& name) {
  if (startsWith(name, "trace:"))
    return sim::WorkloadSpec::traceFiles(name.substr(6));
  if (name == "mix-high" || name == "mix-blend") return sim::WorkloadSpec::mix(name);
  for (auto kind : {trace::MtKind::Radix, trace::MtKind::Fft, trace::MtKind::Canneal,
                    trace::MtKind::TpcC, trace::MtKind::TpcH}) {
    if (name == trace::mtKindName(kind)) return sim::WorkloadSpec::mt(kind);
  }
  return sim::WorkloadSpec::spec(name);  // validated by the profile lookup
}

/// Populate cores/channels for a multicore workload (the single main() path
/// below does the same inline for its one config).
void applyWorkloadShape(sim::SystemConfig& cfg, const sim::WorkloadSpec& spec) {
  if (spec.kind != sim::WorkloadSpec::Kind::SingleSpec &&
      spec.kind != sim::WorkloadSpec::Kind::TraceFile) {
    const auto phy = interface::PhyModel::make(cfg.phy);
    cfg.hier.numCores = 64;
    cfg.hier.coresPerCluster = 4;
    if (cfg.channels < 0) cfg.channels = phy.channels;
  }
}

/// "tsi-ubank(4,4)" -> "tsi-ubank-4-4-": a preset label safe inside a file
/// name (used to derive per-point --record-cmds paths under --sweep).
std::string sanitizeLabel(const std::string& label) {
  std::string out;
  for (const char c : label)
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
            c == '_' || c == '.')
               ? c
               : '-';
  return out;
}

/// "dir/cmds.mbc" + "ddr3-pcb" -> "dir/cmds.ddr3-pcb.mbc".
std::string perPointTracePath(const std::string& base, const std::string& label) {
  const auto dot = base.rfind('.');
  const auto slash = base.rfind('/');
  const bool hasExt = dot != std::string::npos &&
                      (slash == std::string::npos || dot > slash);
  if (!hasExt) return base + "." + sanitizeLabel(label);
  return base.substr(0, dot) + "." + sanitizeLabel(label) + base.substr(dot);
}

/// Audit one recorded trace; prints a one-line verdict. Returns true when
/// the trace loads and replays clean.
bool auditRecordedTrace(const std::string& path) {
  analysis::DiagnosticEngine diags;
  const auto trace = mc::readCmdTrace(path, diags);
  if (!trace.has_value()) {
    std::fprintf(stderr, "%s", diags.renderText().c_str());
    std::printf("audit %-40s UNREADABLE\n", path.c_str());
    return false;
  }
  const auto res = analysis::auditCmdTrace(*trace, diags);
  if (diags.hasErrors()) {
    std::fprintf(stderr, "%s", diags.renderText().c_str());
    std::printf("audit %-40s VIOLATIONS (%lld of %lld events rejected)\n",
                path.c_str(), static_cast<long long>(res.commandsRejected),
                static_cast<long long>(res.eventsAudited));
    return false;
  }
  std::printf("audit %-40s CLEAN (%lld events)\n", path.c_str(),
              static_cast<long long>(res.eventsAudited));
  return true;
}

int runPresetSweep(const sim::SystemConfig& userCfg, const std::string& workload,
                   int jobs, bool reseed, const std::string& recordCmds,
                   bool audit, const std::string& journalPath, bool resume) {
  const auto spec = workloadByName(workload);
  std::vector<sim::SweepPoint> points;
  for (const auto& preset : sim::shippedPresets()) {
    sim::SystemConfig cfg = preset.cfg;
    // Carry the user's run-shaping flags into every preset; the preset owns
    // the architecture (phy/ubank/policy/...), the user owns the run.
    cfg.core.maxInstrs = userCfg.core.maxInstrs;
    cfg.seed = userCfg.seed;
    if (!recordCmds.empty())
      cfg.recordCmdsPath = perPointTracePath(recordCmds, preset.name);
    applyWorkloadShape(cfg, spec);
    points.push_back({preset.name, cfg, spec});
  }

  sim::SweepOptions opts;
  opts.jobs = jobs;
  opts.reseedPoints = reseed;
  opts.progress = true;
  std::vector<sim::SweepOutcome> outcomes;
  if (!journalPath.empty()) {
    std::string err;
    auto merged = sim::runSweepJournaled(workload, points, opts, journalPath,
                                         resume, &err);
    if (!merged.has_value()) {
      std::fprintf(stderr, "mbsim: %s\n", err.c_str());
      return 2;
    }
    outcomes = std::move(*merged);
  } else {
    outcomes = sim::SweepRunner(opts).run(points);
  }

  std::printf("preset sweep: workload=%s jobs=%d%s\n\n", workload.c_str(),
              sim::resolveJobs(jobs), reseed ? " (reseeded per point)" : "");
  std::printf("%-32s %10s %12s %9s %7s\n", "preset", "IPC", "1/EDP", "row-hit",
              "MAPKI");
  int failures = 0;
  for (const auto& o : outcomes) {
    if (!o.ok) {
      ++failures;
      std::printf("%-32s ERROR: %s\n", o.label.c_str(), o.error.c_str());
      continue;
    }
    std::printf("%-32s %10.3f %12.4g %9.3f %7.1f\n", o.label.c_str(),
                o.result.systemIpc, o.result.invEdp, o.result.rowHitRate,
                o.result.mapki);
  }
  if (failures > 0)
    std::printf("\n%d of %zu presets failed (see rows above)\n", failures,
                outcomes.size());

  if (audit && !recordCmds.empty()) {
    std::printf("\n");
    for (const auto& point : points) {
      if (!auditRecordedTrace(point.cfg.recordCmdsPath)) ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::tsiBaselineConfig();
  std::string workload = "429.mcf";
  std::string value;
  bool sweep = false;
  bool reseed = false;
  bool audit = false;
  std::string recordCmds;
  int jobs = 0;
  sim::RunOptions runOpts;
  std::string warmupSave;
  std::string journalPath;
  bool resume = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::printf("%s", versionBanner("mbsim").c_str());
      return 0;
    } else if (arg == "--sweep") {
      sweep = true;
    } else if (arg == "--reseed") {
      reseed = true;
    } else if (matchFlag(arg, "jobs", &value)) {
      jobs = std::atoi(value.c_str());
      if (jobs < 1) usage("--jobs expects a positive integer");
    } else if (matchFlag(arg, "shards", &value)) {
      runOpts.shards = std::atoi(value.c_str());
      if (runOpts.shards < 1) usage("--shards expects a positive integer");
    } else if (matchFlag(arg, "workload", &value)) {
      workload = value;
    } else if (matchFlag(arg, "preset", &value)) {
      bool found = false;
      for (const auto& p : sim::shippedPresets()) {
        if (p.name != value) continue;
        const auto keepInstrs = cfg.core.maxInstrs;
        const auto keepSeed = cfg.seed;
        cfg = p.cfg;
        cfg.core.maxInstrs = keepInstrs;
        cfg.seed = keepSeed;
        found = true;
        break;
      }
      if (!found) usage(("unknown preset: " + value).c_str());
    } else if (matchFlag(arg, "nw", &value)) {
      cfg.ubank.nW = std::atoi(value.c_str());
    } else if (matchFlag(arg, "nb", &value)) {
      cfg.ubank.nB = std::atoi(value.c_str());
    } else if (matchFlag(arg, "phy", &value)) {
      if (value == "ddr3-pcb") cfg.phy = interface::PhyKind::Ddr3Pcb;
      else if (value == "ddr3-tsi") cfg.phy = interface::PhyKind::Ddr3Tsi;
      else if (value == "lpddr-tsi") cfg.phy = interface::PhyKind::LpddrTsi;
      else if (value == "hmc") cfg.phy = interface::PhyKind::Hmc;
      else usage("unknown --phy");
    } else if (matchFlag(arg, "policy", &value)) {
      if (value == "open") cfg.pagePolicy = core::PolicyKind::Open;
      else if (value == "close") cfg.pagePolicy = core::PolicyKind::Close;
      else if (value == "minimalist") cfg.pagePolicy = core::PolicyKind::MinimalistOpen;
      else if (value == "local") cfg.pagePolicy = core::PolicyKind::LocalBimodal;
      else if (value == "global") cfg.pagePolicy = core::PolicyKind::GlobalBimodal;
      else if (value == "tournament") cfg.pagePolicy = core::PolicyKind::Tournament;
      else if (value == "perfect") cfg.pagePolicy = core::PolicyKind::Perfect;
      else usage("unknown --policy");
    } else if (matchFlag(arg, "scheduler", &value)) {
      if (value == "fcfs") cfg.scheduler = mc::SchedulerKind::Fcfs;
      else if (value == "frfcfs") cfg.scheduler = mc::SchedulerKind::FrFcfs;
      else if (value == "parbs") cfg.scheduler = mc::SchedulerKind::ParBs;
      else usage("unknown --scheduler");
    } else if (matchFlag(arg, "ib", &value)) {
      cfg.interleaveBaseBit = std::atoi(value.c_str());
    } else if (matchFlag(arg, "instrs", &value)) {
      cfg.core.maxInstrs = std::atoll(value.c_str());
    } else if (matchFlag(arg, "queue", &value)) {
      cfg.queueDepth = std::atoi(value.c_str());
    } else if (matchFlag(arg, "seed", &value)) {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (arg == "--xor-bank-hash") {
      cfg.xorBankHash = true;
    } else if (arg == "--per-bank-refresh") {
      cfg.perBankRefresh = true;
    } else if (arg == "--no-refresh") {
      cfg.refresh = false;
    } else if (arg == "--no-prefetch") {
      cfg.hier.enablePrefetch = false;
    } else if (arg == "--timing-check") {
      cfg.timingCheck = true;
    } else if (matchFlag(arg, "record-cmds", &value)) {
      if (value.empty()) usage("--record-cmds expects a file path");
      recordCmds = value;
    } else if (arg == "--audit") {
      audit = true;
    } else if (matchFlag(arg, "checkpoint-at", &value)) {
      runOpts.checkpointAt = std::atoll(value.c_str());
      if (runOpts.checkpointAt < 0) usage("--checkpoint-at expects picoseconds >= 0");
    } else if (matchFlag(arg, "checkpoint", &value)) {
      if (value.empty()) usage("--checkpoint expects a file path");
      runOpts.checkpointPath = value;
    } else if (matchFlag(arg, "restore-from", &value)) {
      if (value.empty()) usage("--restore-from expects a file path");
      runOpts.restorePath = value;
    } else if (matchFlag(arg, "warmup", &value)) {
      runOpts.warmupRecords = std::atoll(value.c_str());
      if (runOpts.warmupRecords < 1) usage("--warmup expects a positive record count");
    } else if (matchFlag(arg, "warmup-save", &value)) {
      if (value.empty()) usage("--warmup-save expects a file path");
      warmupSave = value;
    } else if (matchFlag(arg, "warmup-load", &value)) {
      if (value.empty()) usage("--warmup-load expects a file path");
      runOpts.warmupRestorePath = value;
    } else if (matchFlag(arg, "journal", &value)) {
      if (value.empty()) usage("--journal expects a file path");
      journalPath = value;
    } else if (matchFlag(arg, "resume", &value)) {
      if (value.empty()) usage("--resume expects a journal path");
      journalPath = value;
      resume = true;
    } else {
      usage(("unrecognized argument: " + arg).c_str());
    }
  }
  // Pre-flight static analysis: reject an invalid configuration with
  // structured diagnostics before any simulation tick runs. This fires in
  // sweep mode too — the presets own the architecture there, but a config
  // flag bad enough to fail lint is a user error, not something to ignore.
  {
    analysis::DiagnosticEngine engine;
    analysis::ConfigLinter linter(engine);
    if (!linter.lintSystem(cfg)) {
      std::fprintf(stderr, "mbsim: configuration rejected by mblint rules:\n%s",
                   engine.renderText().c_str());
      return 2;
    }
  }

  if (audit && recordCmds.empty()) recordCmds = "mbsim-cmds.mbc";
  if ((runOpts.checkpointAt >= 0) != !runOpts.checkpointPath.empty())
    usage("--checkpoint-at and --checkpoint must be given together");
  if (!journalPath.empty() && !sweep)
    usage("--journal/--resume only apply to --sweep mode");

  if (sweep)
    return runPresetSweep(cfg, workload, jobs, reseed, recordCmds, audit,
                          journalPath, resume);

  cfg.recordCmdsPath = recordCmds;
  auto spec = workloadByName(workload);
  applyWorkloadShape(cfg, spec);

  // A rejected snapshot (or any other MB_CHECK failure) becomes a printed
  // diagnostic and exit 2 — same contract as mblint/mbaudit, no SIGABRT.
  ScopedCheckTrap trap;

  if (!warmupSave.empty()) {
    // Capture-only mode: run the functional warmup and persist it as a
    // reusable MBCKPT1 warmup snapshot; no timed simulation.
    if (runOpts.warmupRecords < 1)
      usage("--warmup-save requires --warmup=N (the warmup length)");
    std::string buf;
    try {
      buf = sim::captureWarmupSnapshot(cfg, spec, runOpts.warmupRecords);
    } catch (const CheckFailure& f) {
      std::fprintf(stderr, "mbsim: %s\n", f.message.c_str());
      return 2;
    }
    std::FILE* f = std::fopen(warmupSave.c_str(), "wb");
    if (f == nullptr || std::fwrite(buf.data(), 1, buf.size(), f) != buf.size()) {
      if (f != nullptr) std::fclose(f);
      std::fprintf(stderr, "mbsim: cannot write %s\n", warmupSave.c_str());
      return 2;
    }
    std::fclose(f);
    std::printf("wrote warmup snapshot (%zu bytes, %lld records/core) to %s\n",
                buf.size(), static_cast<long long>(runOpts.warmupRecords),
                warmupSave.c_str());
    return 0;
  }

  sim::RunResult r;
  try {
    r = sim::runSimulation(cfg, spec, runOpts);
  } catch (const CheckFailure& f) {
    std::fprintf(stderr, "mbsim: %s\n", f.message.c_str());
    return 2;
  }

  std::printf("workload            %s\n", r.workload.c_str());
  std::printf("phy                 %s\n", interface::phyKindName(cfg.phy).c_str());
  std::printf("ubank (nW,nB)       (%d,%d)\n", cfg.ubank.nW, cfg.ubank.nB);
  std::printf("page policy         %s\n", core::policyKindName(cfg.pagePolicy).c_str());
  std::printf("scheduler           %s\n", mc::schedulerKindName(cfg.scheduler).c_str());
  std::printf("\n");
  std::printf("system IPC          %.3f (%zu cores)\n", r.systemIpc, r.coreIpc.size());
  std::printf("elapsed             %.3f ms\n", toSeconds(r.elapsed) * 1e3);
  std::printf("instructions        %lld\n", static_cast<long long>(r.instructions));
  std::printf("DRAM reads/writes   %lld / %lld (MAPKI %.1f)\n",
              static_cast<long long>(r.dramReads), static_cast<long long>(r.dramWrites),
              r.mapki);
  std::printf("row hit rate        %.3f\n", r.rowHitRate);
  std::printf("predictor hit rate  %.3f\n", r.predictorHitRate);
  std::printf("avg read latency    %.1f ns\n", r.avgReadLatencyNs);
  std::printf("avg queue occupancy %.2f\n", r.avgQueueOccupancy);
  std::printf("data bus util       %.2f\n", r.dataBusUtilization);
  std::printf("prefetch issued     %lld (useful %lld)\n",
              static_cast<long long>(r.hierarchy.prefetchIssued),
              static_cast<long long>(r.hierarchy.prefetchUseful));
  const double sec = toSeconds(r.elapsed);
  std::printf("\nenergy (mJ) / avg power (W):\n");
  auto line = [&](const char* tag, double pj) {
    std::printf("  %-12s %8.3f mJ  %7.3f W\n", tag, pj * 1e-9, pj * 1e-12 / sec);
  };
  line("processor", r.energy.processor);
  line("ACT/PRE", r.energy.dramActPre);
  line("DRAM static", r.energy.dramStatic);
  line("RD/WR", r.energy.dramRdWr);
  line("I/O", r.energy.io);
  line("total", r.energy.total());
  std::printf("\n1/EDP               %.4g (J*s)^-1\n", r.invEdp);

  if (audit) {
    std::printf("\n");
    if (!auditRecordedTrace(recordCmds)) return 1;
  }
  return 0;
}
