// mbdetcheck — determinism & channel-ownership static analysis.
//
// Scans the simulator's own sources for the nondeterminism classes that
// would silently break sharded (per-channel) simulation: hash-order
// iteration, pointer-valued keys, wall clocks and libc randomness, hidden
// mutable statics, FP accumulation in hash order, and undeclared
// channel-local -> cross-channel references (registry: DESIGN.md
// §"Determinism & ownership analysis"; annotations: common/ownership.hpp).
// Like mblint for configs and mbaudit for traces, it exits 0 only when the
// tree is clean, so ctest/CI can gate on it.
//
//   mbdetcheck                         scan ./{src,bench,tools}
//   mbdetcheck --root=DIR              scan DIR/{src,bench,tools}
//   mbdetcheck FILE...                 scan explicit files
//   mbdetcheck --ownership             also print the ownership map
//   mbdetcheck --json                  machine-readable output
//   mbdetcheck --baseline=FILE         drop findings listed in FILE
//   mbdetcheck --write-baseline=FILE   record current findings as baseline
//   mbdetcheck --self-test=DIR         run the seeded violation fixtures
//   mbdetcheck --version
//
// Baseline lines are `CODE:file:line`; `--write-baseline` emits them sorted
// so the file diffs cleanly. The self-test corpus protocol: a fixture named
// mbdet_NNN_*.cpp must produce at least one finding, the first and every
// error finding carrying code MB-DET-NNN; mbdet_000_*.cpp must be clean.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/det_lint.hpp"
#include "common/string_util.hpp"
#include "common/version.hpp"

namespace {

using namespace mb;

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr,
               "mbdetcheck: %s\n(see the header of tools/mbdetcheck.cpp for flags)\n",
               msg);
  std::exit(2);
}

bool matchFlag(const std::string& arg, const std::string& name, std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (!startsWith(arg, prefix)) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool isErrorSeverity(analysis::Severity s) {
  return s == analysis::Severity::Error || s == analysis::Severity::Fatal;
}

std::string baselineKey(const analysis::Diagnostic& d) {
  return d.code + ":" + d.where.file + ":" + std::to_string(d.where.line);
}

/// Run the seeded violation corpus: each fixture must trip exactly its
/// expected code (or be clean for mbdet_000_*). Returns the process exit.
int runSelfTest(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> names;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; it != end; it.increment(ec)) {
    if (ec) break;
    const std::string name = it->path().filename().string();
    if (name.size() > 10 && name.compare(0, 6, "mbdet_") == 0 &&
        std::isdigit(static_cast<unsigned char>(name[6])) &&
        std::isdigit(static_cast<unsigned char>(name[7])) &&
        std::isdigit(static_cast<unsigned char>(name[8])) && name[9] == '_')
      names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  if (names.empty()) {
    std::fprintf(stderr, "mbdetcheck: no mbdet_NNN_* fixtures in %s\n", dir.c_str());
    return 1;
  }
  int failures = 0;
  for (const std::string& name : names) {
    const std::string expected = "MB-DET-" + name.substr(6, 3);
    const bool expectClean = name.compare(6, 3, "000") == 0;
    analysis::DetFileInput input;
    input.path = name;
    if (!analysis::readFileToString((fs::path(dir) / name).string(), &input.contents)) {
      std::printf("FAIL %-40s (unreadable)\n", name.c_str());
      ++failures;
      continue;
    }
    analysis::DiagnosticEngine engine;
    analysis::DetLinter linter(engine);
    linter.run({input});
    std::vector<const analysis::Diagnostic*> errors;
    for (const analysis::Diagnostic& d : engine.diagnostics())
      if (isErrorSeverity(d.severity)) errors.push_back(&d);
    bool ok;
    if (expectClean) {
      ok = errors.empty();
    } else {
      ok = !errors.empty();
      for (const analysis::Diagnostic* d : errors)
        if (d->code != expected) ok = false;
    }
    if (ok) {
      if (expectClean)
        std::printf("ok   %-40s (clean, %zu suppression(s))\n", name.c_str(),
                    linter.suppressions().size());
      else
        std::printf("ok   %-40s (%s x%zu)\n", name.c_str(), expected.c_str(),
                    errors.size());
    } else {
      std::printf("FAIL %-40s expected %s, got:\n", name.c_str(),
                  expectClean ? "clean" : expected.c_str());
      for (const analysis::Diagnostic& d : engine.diagnostics())
        std::printf("       %s\n", d.text().c_str());
      if (errors.empty()) std::printf("       (no error findings)\n");
      ++failures;
    }
  }
  std::printf("self-test: %zu fixture(s), %d failure(s)\n", names.size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::vector<std::string> explicitFiles;
  std::string baselinePath, writeBaselinePath, selfTestDir;
  bool json = false, wantOwnership = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--version") {
      std::fputs(versionBanner("mbdetcheck").c_str(), stdout);
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--ownership") {
      wantOwnership = true;
    } else if (matchFlag(arg, "root", &value)) {
      root = value;
    } else if (matchFlag(arg, "baseline", &value)) {
      baselinePath = value;
    } else if (matchFlag(arg, "write-baseline", &value)) {
      writeBaselinePath = value;
    } else if (matchFlag(arg, "self-test", &value)) {
      selfTestDir = value;
    } else if (startsWith(arg, "--")) {
      usage(("unknown flag: " + arg).c_str());
    } else {
      explicitFiles.push_back(arg);
    }
  }

  if (!selfTestDir.empty()) return runSelfTest(selfTestDir);

  // Assemble the file list: explicit paths, or a deterministic tree walk.
  std::vector<analysis::DetFileInput> inputs;
  if (explicitFiles.empty()) {
    if (root.empty()) root = ".";
    for (const std::string& rel :
         analysis::collectDetSourceFiles(root, {"src", "bench", "tools"})) {
      analysis::DetFileInput in;
      in.path = rel;
      const std::string full = root == "." ? rel : root + "/" + rel;
      if (!analysis::readFileToString(full, &in.contents))
        usage(("cannot read " + full).c_str());
      inputs.push_back(std::move(in));
    }
  } else {
    for (const std::string& path : explicitFiles) {
      analysis::DetFileInput in;
      in.path = path;
      if (!analysis::readFileToString(path, &in.contents))
        usage(("cannot read " + path).c_str());
      inputs.push_back(std::move(in));
    }
  }
  if (inputs.empty()) usage("no source files found");

  analysis::DiagnosticEngine engine;
  analysis::DetLinter linter(engine);
  linter.run(inputs);

  std::set<std::string> baseline;
  if (!baselinePath.empty()) {
    std::ifstream in(baselinePath);
    if (!in) usage(("cannot read baseline " + baselinePath).c_str());
    std::string line;
    while (std::getline(in, line))
      if (!line.empty() && line[0] != '#') baseline.insert(line);
  }

  std::vector<const analysis::Diagnostic*> kept;
  int filtered = 0, errors = 0, warnings = 0;
  for (const analysis::Diagnostic& d : engine.diagnostics()) {
    if (baseline.count(baselineKey(d)) > 0) {
      ++filtered;
      continue;
    }
    kept.push_back(&d);
    if (isErrorSeverity(d.severity)) ++errors;
    else if (d.severity == analysis::Severity::Warning) ++warnings;
  }

  if (!writeBaselinePath.empty()) {
    std::vector<std::string> keys;
    for (const analysis::Diagnostic* d : kept) keys.push_back(baselineKey(*d));
    std::sort(keys.begin(), keys.end());
    std::ofstream out(writeBaselinePath);
    if (!out) usage(("cannot write baseline " + writeBaselinePath).c_str());
    out << "# mbdetcheck baseline — CODE:file:line, one accepted finding per line\n";
    for (const std::string& k : keys) out << k << '\n';
    std::printf("mbdetcheck: wrote %zu baseline entr%s to %s\n", keys.size(),
                keys.size() == 1 ? "y" : "ies", writeBaselinePath.c_str());
  }

  if (json) {
    std::ostringstream os;
    os << "{\"tool\":\"" << analysis::jsonEscape(versionString())
       << "\",\"files\":" << inputs.size() << ",\"diagnostics\":[";
    for (std::size_t i = 0; i < kept.size(); ++i) {
      if (i) os << ',';
      os << kept[i]->json();
    }
    os << "],\"suppressions\":[";
    const auto& sups = linter.suppressions();
    for (std::size_t i = 0; i < sups.size(); ++i) {
      if (i) os << ',';
      os << "{\"code\":\"" << analysis::jsonEscape(sups[i].code)
         << "\",\"file\":\"" << analysis::jsonEscape(sups[i].file)
         << "\",\"line\":" << sups[i].line << ",\"fileScope\":"
         << (sups[i].fileScope ? "true" : "false")
         << ",\"uses\":" << sups[i].uses << ",\"reason\":\""
         << analysis::jsonEscape(sups[i].reason) << "\"}";
    }
    os << "],\"baselineFiltered\":" << filtered;
    if (wantOwnership) os << ",\"ownership\":" << linter.ownership().json();
    os << ",\"errors\":" << errors << ",\"warnings\":" << warnings << '}';
    std::printf("%s\n", os.str().c_str());
  } else {
    for (const analysis::Diagnostic* d : kept) std::printf("%s\n", d->text().c_str());
    for (const auto& s : linter.suppressions())
      std::printf("allow %s %s:%d x%d (%s)\n", s.code.c_str(), s.file.c_str(),
                  s.line, s.uses, s.reason.c_str());
    if (wantOwnership) std::fputs(linter.ownership().text().c_str(), stdout);
    std::printf("mbdetcheck: %zu file(s), %d error(s), %d warning(s), "
                "%zu suppression(s), %d baseline-filtered\n",
                inputs.size(), errors, warnings, linter.suppressions().size(),
                filtered);
  }
  return errors > 0 ? 1 : 0;
}
