// mbsnapcheck — save/load symmetry & serialization-completeness analysis.
//
// Scans the simulator's own sources for checkpoint-format hazards: save/load
// streams that disagree in order/type/count, snapshot sections written but
// never loaded, data members mutated by the simulation but forgotten by
// save(), fingerprint drift without a kSnapshotVersion bump, and load paths
// that size containers from unguarded wire lengths (registry: DESIGN.md
// §"Snapshot completeness analysis"; annotations: common/ownership.hpp).
// Like mblint for configs, mbaudit for traces and mbdetcheck for
// determinism, it exits 0 only when the tree is clean.
//
//   mbsnapcheck                          scan ./src
//   mbsnapcheck --root=DIR               scan DIR/src
//   mbsnapcheck FILE...                  scan explicit files
//   mbsnapcheck --json                   machine-readable output
//   mbsnapcheck --baseline=FILE          fingerprint baseline
//                                        (default: ROOT/tools/snap_baseline.txt
//                                        when present)
//   mbsnapcheck --write-baseline=FILE    record current fingerprints
//   mbsnapcheck --self-test=DIR          run the seeded violation fixtures
//   mbsnapcheck --version
//
// The baseline is semantic, not positional: one `Class::Suffix fingerprint`
// line per save stream plus the kSnapshotVersion it was recorded against
// (MB-SNP-004 only fires while the version still matches). The self-test
// corpus protocol extends mbdetcheck's to warning-severity codes: a fixture
// named mbsnp_NNN_*.cpp must produce at least one finding with code
// MB-SNP-NNN and every *error* finding must carry that code; mbsnp_000_*
// must have no errors. Fixtures named *_004_* run against a synthesized
// stale baseline so fingerprint drift is exercised hermetically.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/snap_lint.hpp"
#include "common/string_util.hpp"
#include "common/version.hpp"

namespace {

using namespace mb;

[[noreturn]] void usage(const char* msg) {
  std::fprintf(
      stderr,
      "mbsnapcheck: %s\n(see the header of tools/mbsnapcheck.cpp for flags)\n",
      msg);
  std::exit(2);
}

bool matchFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (!startsWith(arg, prefix)) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool isErrorSeverity(analysis::Severity s) {
  return s == analysis::Severity::Error || s == analysis::Severity::Fatal;
}

/// Run the seeded violation corpus (protocol in the file header).
int runSelfTest(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> names;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; it != end; it.increment(ec)) {
    if (ec) break;
    const std::string name = it->path().filename().string();
    if (name.size() > 10 && name.compare(0, 6, "mbsnp_") == 0 &&
        std::isdigit(static_cast<unsigned char>(name[6])) &&
        std::isdigit(static_cast<unsigned char>(name[7])) &&
        std::isdigit(static_cast<unsigned char>(name[8])) && name[9] == '_')
      names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  if (names.empty()) {
    std::fprintf(stderr, "mbsnapcheck: no mbsnp_NNN_* fixtures in %s\n",
                 dir.c_str());
    return 1;
  }
  int failures = 0;
  for (const std::string& name : names) {
    const std::string expected = "MB-SNP-" + name.substr(6, 3);
    const bool expectClean = name.compare(6, 3, "000") == 0;
    analysis::SnapFileInput input;
    input.path = name;
    if (!analysis::readFileToString((fs::path(dir) / name).string(),
                                    &input.contents)) {
      std::printf("FAIL %-40s (unreadable)\n", name.c_str());
      ++failures;
      continue;
    }
    analysis::SnapLintOptions opts;
    if (name.find("_004_") != std::string::npos) {
      // Hermetic fingerprint-drift setup: the fixture declares its own
      // kSnapshotVersion; a stale baseline for its pair forces the drift.
      opts.snapshotVersion = analysis::parseSnapshotVersion(input.contents);
      opts.haveBaseline = true;
      opts.baselineContents =
          "version " + std::to_string(opts.snapshotVersion) +
          "\nSnapDemo:: 0000000000000000\n";
    }
    analysis::DiagnosticEngine engine;
    analysis::SnapLinter linter(engine, opts);
    linter.run({input});
    std::size_t expectedHits = 0;
    std::vector<const analysis::Diagnostic*> errors;
    for (const analysis::Diagnostic& d : engine.diagnostics()) {
      if (d.code == expected) ++expectedHits;
      if (isErrorSeverity(d.severity)) errors.push_back(&d);
    }
    bool ok;
    if (expectClean) {
      ok = errors.empty();
    } else {
      ok = expectedHits > 0;
      for (const analysis::Diagnostic* d : errors)
        if (d->code != expected) ok = false;
    }
    if (ok) {
      if (expectClean)
        std::printf("ok   %-40s (clean, %zu suppression(s))\n", name.c_str(),
                    linter.suppressions().size());
      else
        std::printf("ok   %-40s (%s x%zu)\n", name.c_str(), expected.c_str(),
                    expectedHits);
    } else {
      std::printf("FAIL %-40s expected %s, got:\n", name.c_str(),
                  expectClean ? "clean" : expected.c_str());
      for (const analysis::Diagnostic& d : engine.diagnostics())
        std::printf("       %s\n", d.text().c_str());
      if (engine.diagnostics().empty()) std::printf("       (no findings)\n");
      ++failures;
    }
  }
  std::printf("self-test: %zu fixture(s), %d failure(s)\n", names.size(),
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::vector<std::string> explicitFiles;
  std::string baselinePath, writeBaselinePath, selfTestDir;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--version") {
      std::fputs(versionBanner("mbsnapcheck").c_str(), stdout);
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (matchFlag(arg, "root", &value)) {
      root = value;
    } else if (matchFlag(arg, "baseline", &value)) {
      baselinePath = value;
    } else if (matchFlag(arg, "write-baseline", &value)) {
      writeBaselinePath = value;
    } else if (matchFlag(arg, "self-test", &value)) {
      selfTestDir = value;
    } else if (startsWith(arg, "--")) {
      usage(("unknown flag: " + arg).c_str());
    } else {
      explicitFiles.push_back(arg);
    }
  }

  if (!selfTestDir.empty()) return runSelfTest(selfTestDir);

  // Assemble the file list: explicit paths, or a deterministic tree walk.
  // ownership.hpp documents the annotation vocabulary and serialize.hpp
  // implements the Writer/Reader primitives themselves — scanning either
  // would only report their own documentation/implementation.
  std::vector<analysis::SnapFileInput> inputs;
  const bool treeScan = explicitFiles.empty();
  if (treeScan) {
    if (root.empty()) root = ".";
    for (const std::string& rel : analysis::collectSourceFiles(
             root, {"src"},
             {"common/ownership.hpp", "ckpt/serialize.hpp"})) {
      analysis::SnapFileInput in;
      in.path = rel;
      const std::string full = root == "." ? rel : root + "/" + rel;
      if (!analysis::readFileToString(full, &in.contents))
        usage(("cannot read " + full).c_str());
      inputs.push_back(std::move(in));
    }
  } else {
    for (const std::string& path : explicitFiles) {
      analysis::SnapFileInput in;
      in.path = path;
      if (!analysis::readFileToString(path, &in.contents))
        usage(("cannot read " + path).c_str());
      inputs.push_back(std::move(in));
    }
  }
  if (inputs.empty()) usage("no source files found");

  analysis::SnapLintOptions opts;
  // The format version gates MB-SNP-004: read it from the scanned tree.
  for (const analysis::SnapFileInput& in : inputs) {
    if (in.path.size() >= 17 &&
        in.path.compare(in.path.size() - 17, 17, "ckpt/snapshot.hpp") == 0) {
      opts.snapshotVersion = analysis::parseSnapshotVersion(in.contents);
      break;
    }
  }
  if (treeScan && baselinePath.empty()) {
    const std::string candidate = root + "/tools/snap_baseline.txt";
    std::ifstream probe(candidate);
    if (probe) baselinePath = candidate;
  }
  if (!baselinePath.empty()) {
    if (!analysis::readFileToString(baselinePath, &opts.baselineContents))
      usage(("cannot read baseline " + baselinePath).c_str());
    opts.haveBaseline = true;
  }

  analysis::DiagnosticEngine engine;
  analysis::SnapLinter linter(engine, opts);
  linter.run(inputs);

  int errors = 0, warnings = 0;
  for (const analysis::Diagnostic& d : engine.diagnostics()) {
    if (isErrorSeverity(d.severity)) ++errors;
    else if (d.severity == analysis::Severity::Warning) ++warnings;
  }

  if (!writeBaselinePath.empty()) {
    std::ofstream out(writeBaselinePath);
    if (!out) usage(("cannot write baseline " + writeBaselinePath).c_str());
    out << linter.renderBaseline();
    std::printf("mbsnapcheck: wrote %zu fingerprint(s) to %s\n",
                linter.pairs().size(), writeBaselinePath.c_str());
  }

  if (json) {
    std::ostringstream os;
    os << "{\"tool\":\"" << analysis::jsonEscape(versionString())
       << "\",\"files\":" << inputs.size() << ",\"diagnostics\":[";
    const auto& diags = engine.diagnostics();
    for (std::size_t i = 0; i < diags.size(); ++i) {
      if (i) os << ',';
      os << diags[i].json();
    }
    os << "],\"suppressions\":[";
    const auto& sups = linter.suppressions();
    for (std::size_t i = 0; i < sups.size(); ++i) {
      if (i) os << ',';
      os << "{\"code\":\"" << analysis::jsonEscape(sups[i].code)
         << "\",\"file\":\"" << analysis::jsonEscape(sups[i].file)
         << "\",\"line\":" << sups[i].line
         << ",\"fileScope\":" << (sups[i].fileScope ? "true" : "false")
         << ",\"uses\":" << sups[i].uses << ",\"reason\":\""
         << analysis::jsonEscape(sups[i].reason) << "\"}";
    }
    os << "],\"pairs\":[";
    const auto& pairs = linter.pairs();
    bool firstPair = true;
    for (const analysis::SnapPair& p : pairs) {
      if (!p.hasSave) continue;
      if (!firstPair) os << ',';
      firstPair = false;
      os << "{\"key\":\"" << analysis::jsonEscape(p.key)
         << "\",\"fingerprint\":\"";
      char buf[17];
      std::snprintf(buf, sizeof buf, "%016llx",
                    static_cast<unsigned long long>(p.fingerprint));
      os << buf << "\",\"stream\":\"" << analysis::jsonEscape(p.saveStream)
         << "\"}";
    }
    os << "],\"snapshotVersion\":" << opts.snapshotVersion
       << ",\"errors\":" << errors << ",\"warnings\":" << warnings << '}';
    std::printf("%s\n", os.str().c_str());
  } else {
    for (const analysis::Diagnostic& d : engine.diagnostics())
      std::printf("%s\n", d.text().c_str());
    for (const auto& s : linter.suppressions())
      std::printf("allow %s %s:%d x%d (%s)\n", s.code.c_str(), s.file.c_str(),
                  s.line, s.uses, s.reason.c_str());
    std::size_t pairCount = 0;
    for (const analysis::SnapPair& p : linter.pairs())
      if (p.hasSave && p.hasLoad) ++pairCount;
    std::printf("mbsnapcheck: %zu file(s), %zu save/load pair(s), %d "
                "error(s), %d warning(s), %zu suppression(s)\n",
                inputs.size(), pairCount, errors, warnings,
                linter.suppressions().size());
  }
  return errors > 0 ? 1 : 0;
}
