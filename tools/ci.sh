#!/usr/bin/env bash
# CI gate: build + full ctest under ASan+UBSan, a TSan pass over the parallel
# sweep tests, a recorded (non-gating) perf-harness run in an unsanitized
# build tree, then clang-tidy over src/.
#
# Usage:  tools/ci.sh [build-dir]        (default: build-ci)
#
# The sanitizer runs are the hard gate — any leak, overflow, UB, or data race
# aborts the suite and this script exits non-zero. TSan cannot coexist with
# ASan in one binary, so the race check uses its own build tree
# (<build-dir>-tsan) and only rebuilds the thread-bearing sim tests.
# clang-tidy runs when available and is skipped with a notice otherwise (the
# container image may not ship it); when it does run, its warnings fail the
# gate too.
set -euo pipefail

# MB_REQUIRE_STATIC=1 is the umbrella switch for the source-level analysis
# stages: it implies MB_REQUIRE_TIDY=1, MB_REQUIRE_DET=1 and
# MB_REQUIRE_SNAP=1, turning every warn-only static check into a hard gate.
if [ "${MB_REQUIRE_STATIC:-0}" = "1" ]; then
  MB_REQUIRE_TIDY=1
  MB_REQUIRE_DET=1
  MB_REQUIRE_SNAP=1
fi
# Per-stage verdicts for the consolidated summary printed at the end.
static_mblint="not run"
static_det="not run"
static_snap="not run"
static_tidy="not run"

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-ci}"
build_tsan="${build}-tsan"

echo "== configure (${build}) with MB_SANITIZE=address;undefined =="
cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMB_SANITIZE="address;undefined" \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

echo "== build =="
cmake --build "$build" -j"$(nproc)"

echo "== ctest under ASan+UBSan =="
# halt_on_error makes UBSan findings fatal instead of log-and-continue, so a
# green suite really means zero sanitizer reports.
ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ctest --test-dir "$build" --output-on-failure -j"$(nproc)"

echo "== configure (${build_tsan}) with MB_SANITIZE=thread =="
cmake -B "$build_tsan" -S "$repo" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMB_SANITIZE="thread"

echo "== build sim_tests for TSan =="
cmake --build "$build_tsan" -j"$(nproc)" --target sim_tests

echo "== parallel-sweep tests under TSan =="
# The SweepRunner worker pool and the parallel runSpecGroup overload are the
# only intentionally multithreaded code paths; any report here is a real race.
TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "$build_tsan" --output-on-failure \
    -R 'SweepRunner|RunSpecGroupParallel'

echo "== mblint conformance =="
"$build/tools/mblint" --all-presets
static_mblint="pass"

echo "== mbdetcheck determinism & ownership =="
# The seeded violation corpus must trip exactly its expected codes (this is
# the proof the analyzer fires, so it is always fatal). The whole-tree scan
# and the ownership map are also enforced by ctest (mbdetcheck_tree_clean /
# mbdetcheck_ownership_json); here they run warn-only by default so a CI
# box mid-refactor still gets the full report, and MB_REQUIRE_DET=1 makes
# them fatal like MB_REQUIRE_TIDY does for tidy.
"$build/tools/mbdetcheck" --self-test="$repo/tests/analysis/det_fixtures"
if "$build/tools/mbdetcheck" --root="$repo" --ownership; then
  static_det="pass"
elif [ "${MB_REQUIRE_DET:-0}" = "1" ]; then
  echo "FAIL: mbdetcheck found determinism/ownership violations and MB_REQUIRE_DET=1" >&2
  exit 1
else
  static_det="warn"
  echo "mbdetcheck reported findings (warn-only; set MB_REQUIRE_DET=1 to enforce)"
fi

echo "== mbsnapcheck snapshot completeness =="
# Same two-step contract as mbdetcheck: the seeded MB-SNP fixture corpus is
# always fatal (it proves the analyzer fires), while the whole-tree scan —
# stream symmetry, section names, completeness, and the fingerprint
# baseline in tools/snap_baseline.txt — is warn-only unless
# MB_REQUIRE_SNAP=1 (ctest's mbsnapcheck_tree_clean enforces it regardless).
"$build/tools/mbsnapcheck" --self-test="$repo/tests/analysis/snap_fixtures"
if "$build/tools/mbsnapcheck" --root="$repo"; then
  static_snap="pass"
elif [ "${MB_REQUIRE_SNAP:-0}" = "1" ]; then
  echo "FAIL: mbsnapcheck found snapshot-completeness violations and MB_REQUIRE_SNAP=1" >&2
  exit 1
else
  static_snap="warn"
  echo "mbsnapcheck reported findings (warn-only; set MB_REQUIRE_SNAP=1 to enforce)"
fi

echo "== offline command-trace audit =="
# Record a short run of every shipped preset (one trace per sweep point)
# and let the independent auditor re-verify each; --audit makes mbsim exit
# non-zero if any trace fails. Then the auditor must reject a seeded
# single-command mutant with a non-zero exit (proving the audit actually
# fires, not merely that clean traces pass).
audit_dir="$build/ci-audit"
mkdir -p "$audit_dir"
"$build/tools/mbsim" --sweep --workload=429.mcf --instrs=10000 \
  --record-cmds="$audit_dir/cmds.mbc" --audit >/dev/null
"$build/tools/mbaudit" "$audit_dir/cmds.tsi-baseline.mbc" --geometry=tsi-baseline
if "$build/tools/mbaudit" "$audit_dir/cmds.tsi-baseline.mbc" \
     --mutate=cas-before-trcd >/dev/null 2>&1; then
  echo "FAIL: mbaudit accepted a mutated trace" >&2
  exit 1
fi
rm -rf "$audit_dir"

echo "== checkpoint/restore equivalence per preset =="
# For every shipped preset: run cold, run again writing a mid-flight MBCKPT1
# checkpoint, then restore from it — all three reports must be byte-identical
# (the ASan build also shakes memory bugs out of the save/load paths). The
# checkpoint tick is chosen inside the fast slice's runtime for every preset.
ckpt_dir="$build/ci-ckpt"
mkdir -p "$ckpt_dir"
while read -r preset; do
  "$build/tools/mbsim" --preset="$preset" --workload=429.mcf --instrs=10000 \
    > "$ckpt_dir/cold.txt"
  "$build/tools/mbsim" --preset="$preset" --workload=429.mcf --instrs=10000 \
    --checkpoint-at=15000000 --checkpoint="$ckpt_dir/ck.mbk" \
    > "$ckpt_dir/save.txt"
  "$build/tools/mbsim" --preset="$preset" --workload=429.mcf --instrs=10000 \
    --restore-from="$ckpt_dir/ck.mbk" > "$ckpt_dir/restore.txt"
  cmp "$ckpt_dir/cold.txt" "$ckpt_dir/save.txt" || {
    echo "FAIL: checkpointing perturbed the run for preset $preset" >&2; exit 1; }
  cmp "$ckpt_dir/cold.txt" "$ckpt_dir/restore.txt" || {
    echo "FAIL: restore diverged from cold run for preset $preset" >&2; exit 1; }
  echo "checkpoint/restore ok: $preset"
done < <("$build/tools/mblint" --list-presets)

echo "== resumable sweep journal =="
# A sweep interrupted after its first completed point and resumed must print
# the same table as an uninterrupted one (seed folding keyed to original
# point indices), and a journal from a different sweep must be refused.
"$build/tools/mbsim" --sweep --workload=429.mcf --instrs=10000 --jobs=1 \
  --journal="$ckpt_dir/full.jsonl" > "$ckpt_dir/sweep-full.txt"
head -n 2 "$ckpt_dir/full.jsonl" > "$ckpt_dir/partial.jsonl"
"$build/tools/mbsim" --sweep --workload=429.mcf --instrs=10000 --jobs=1 \
  --resume="$ckpt_dir/partial.jsonl" > "$ckpt_dir/sweep-resumed.txt"
cmp "$ckpt_dir/sweep-full.txt" "$ckpt_dir/sweep-resumed.txt" || {
  echo "FAIL: resumed sweep diverged from the uninterrupted run" >&2; exit 1; }
if "$build/tools/mbsim" --sweep --workload=429.mcf --instrs=10000 --seed=999 \
     --resume="$ckpt_dir/partial.jsonl" >/dev/null 2>&1; then
  echo "FAIL: --resume accepted a journal from a different sweep" >&2
  exit 1
fi
echo "sweep journal resume ok"
rm -rf "$ckpt_dir"

echo "== perf harness (recorded, non-gating) =="
# Host-throughput trajectory: build mbperf WITHOUT sanitizers (ASan skews
# throughput ~5-10x, which would drown any real regression in the diff
# against the committed baseline) in its own build tree, emit
# BENCH_PERF.json next to it, and diff events/sec against
# bench/perf_baseline.txt. Warn-only by design: shared CI hosts are noisy;
# a WARN line in the log is the signal to investigate, not a gate failure.
build_perf="${build}-perf"
cmake -B "$build_perf" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_perf" -j"$(nproc)" --target mbperf
"$build_perf/bench/mbperf" --out="$build_perf/BENCH_PERF.json" \
  --baseline="$repo/bench/perf_baseline.txt"
echo "perf record: $build_perf/BENCH_PERF.json"

echo "== clang-tidy over src/ =="
if command -v clang-tidy >/dev/null 2>&1; then
  # run-clang-tidy parallelises when present; fall back to a plain loop.
  files=$(find "$repo/src" -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "$build" -quiet $files
  else
    status=0
    for f in $files; do
      clang-tidy -p "$build" --quiet "$f" || status=1
    done
    [ "$status" -eq 0 ]
  fi
  static_tidy="pass"
elif [ "${MB_REQUIRE_TIDY:-0}" = "1" ]; then
  echo "FAIL: clang-tidy not installed but MB_REQUIRE_TIDY=1" >&2
  exit 1
else
  static_tidy="skipped (not installed)"
  echo "clang-tidy not installed; skipping tidy pass (build+sanitizer gate still enforced)"
fi

echo "== static-analysis summary =="
# One block to scan instead of four scattered stage logs. "warn" means the
# stage reported findings but was not enforced on this run; set the listed
# switch (or MB_REQUIRE_STATIC=1 for all of them) to make it a hard gate.
printf '  %-14s %s\n' \
  "mblint"      "$static_mblint" \
  "mbdetcheck"  "$static_det   (enforce: MB_REQUIRE_DET=1)" \
  "mbsnapcheck" "$static_snap   (enforce: MB_REQUIRE_SNAP=1)" \
  "clang-tidy"  "$static_tidy   (enforce: MB_REQUIRE_TIDY=1)"
echo "  MB_REQUIRE_STATIC=1 enforces all of the above at once."

echo "== CI gate passed =="
