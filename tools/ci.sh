#!/usr/bin/env bash
# CI gate: build + full ctest under ASan+UBSan, a TSan pass over the parallel
# sweep tests, the channel-sharded engine tests, and one sharded preset run,
# a recorded (non-gating) perf-harness run in an unsanitized build tree, then
# clang-tidy over src/.
#
# Usage:  tools/ci.sh [build-dir]        (default: build-ci)
#
# The sanitizer runs are the hard gate — any leak, overflow, UB, or data race
# aborts the suite and this script exits non-zero. TSan cannot coexist with
# ASan in one binary, so the race check uses its own build tree
# (<build-dir>-tsan) and only rebuilds the thread-bearing sim tests.
# clang-tidy runs when available and is skipped with a notice otherwise (the
# container image may not ship it); when it does run, its warnings fail the
# gate too.
set -euo pipefail

# MB_REQUIRE_STATIC=1 is the umbrella switch for the source-level analysis
# stages: it implies MB_REQUIRE_TIDY=1, MB_REQUIRE_DET=1 and
# MB_REQUIRE_SNAP=1, turning every warn-only static check into a hard gate.
if [ "${MB_REQUIRE_STATIC:-0}" = "1" ]; then
  MB_REQUIRE_TIDY=1
  MB_REQUIRE_DET=1
  MB_REQUIRE_SNAP=1
fi
# Per-stage verdicts for the consolidated summary printed at the end.
static_mblint="not run"
static_det="not run"
static_snap="not run"
static_tidy="not run"

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-ci}"
build_tsan="${build}-tsan"

echo "== configure (${build}) with MB_SANITIZE=address;undefined =="
cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMB_SANITIZE="address;undefined" \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

echo "== build =="
cmake --build "$build" -j"$(nproc)"

echo "== ctest under ASan+UBSan =="
# halt_on_error makes UBSan findings fatal instead of log-and-continue, so a
# green suite really means zero sanitizer reports.
ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ctest --test-dir "$build" --output-on-failure -j"$(nproc)"

echo "== configure (${build_tsan}) with MB_SANITIZE=thread =="
cmake -B "$build_tsan" -S "$repo" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMB_SANITIZE="thread"

echo "== build sim_tests for TSan =="
cmake --build "$build_tsan" -j"$(nproc)" --target sim_tests

echo "== parallel-sweep and shard tests under TSan =="
# The SweepRunner worker pool, the parallel runSpecGroup overload, and the
# channel-sharded engine (ShardedEngine worker pool, DESIGN.md §14) are the
# only intentionally multithreaded code paths; any report here is a real
# race. ShardWindow drives the engine's barrier directly with a two-worker
# pool; ShardDifferential runs whole sharded simulations against serial
# ones.
TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "$build_tsan" --output-on-failure \
    -R 'SweepRunner|RunSpecGroupParallel|ShardWindow|ShardDifferential'

echo "== one preset at --shards=4 under TSan =="
# End-to-end sharded run through the real mbsim binary: 16 channels over 4
# worker threads, long enough to cross thousands of window barriers.
cmake --build "$build_tsan" -j"$(nproc)" --target mbsim
TSAN_OPTIONS=halt_on_error=1 \
  "$build_tsan/tools/mbsim" --preset=tsi-baseline --workload=RADIX \
    --instrs=20000 --shards=4 > /dev/null

echo "== mblint conformance =="
"$build/tools/mblint" --all-presets
static_mblint="pass"

echo "== mbdetcheck determinism & ownership =="
# The seeded violation corpus must trip exactly its expected codes (this is
# the proof the analyzer fires, so it is always fatal). The whole-tree scan
# and the ownership map are also enforced by ctest (mbdetcheck_tree_clean /
# mbdetcheck_ownership_json); here they run warn-only by default so a CI
# box mid-refactor still gets the full report, and MB_REQUIRE_DET=1 makes
# them fatal like MB_REQUIRE_TIDY does for tidy.
"$build/tools/mbdetcheck" --self-test="$repo/tests/analysis/det_fixtures"
if "$build/tools/mbdetcheck" --root="$repo" --ownership; then
  static_det="pass"
elif [ "${MB_REQUIRE_DET:-0}" = "1" ]; then
  echo "FAIL: mbdetcheck found determinism/ownership violations and MB_REQUIRE_DET=1" >&2
  exit 1
else
  static_det="warn"
  echo "mbdetcheck reported findings (warn-only; set MB_REQUIRE_DET=1 to enforce)"
fi

echo "== mbsnapcheck snapshot completeness =="
# Same two-step contract as mbdetcheck: the seeded MB-SNP fixture corpus is
# always fatal (it proves the analyzer fires), while the whole-tree scan —
# stream symmetry, section names, completeness, and the fingerprint
# baseline in tools/snap_baseline.txt — is warn-only unless
# MB_REQUIRE_SNAP=1 (ctest's mbsnapcheck_tree_clean enforces it regardless).
"$build/tools/mbsnapcheck" --self-test="$repo/tests/analysis/snap_fixtures"
if "$build/tools/mbsnapcheck" --root="$repo"; then
  static_snap="pass"
elif [ "${MB_REQUIRE_SNAP:-0}" = "1" ]; then
  echo "FAIL: mbsnapcheck found snapshot-completeness violations and MB_REQUIRE_SNAP=1" >&2
  exit 1
else
  static_snap="warn"
  echo "mbsnapcheck reported findings (warn-only; set MB_REQUIRE_SNAP=1 to enforce)"
fi

echo "== offline command-trace audit =="
# Record a short run of every shipped preset (one trace per sweep point)
# and let the independent auditor re-verify each; --audit makes mbsim exit
# non-zero if any trace fails. Then the auditor must reject a seeded
# single-command mutant with a non-zero exit (proving the audit actually
# fires, not merely that clean traces pass).
audit_dir="$build/ci-audit"
mkdir -p "$audit_dir"
"$build/tools/mbsim" --sweep --workload=429.mcf --instrs=10000 \
  --record-cmds="$audit_dir/cmds.mbc" --audit >/dev/null
"$build/tools/mbaudit" "$audit_dir/cmds.tsi-baseline.mbc" --geometry=tsi-baseline
if "$build/tools/mbaudit" "$audit_dir/cmds.tsi-baseline.mbc" \
     --mutate=cas-before-trcd >/dev/null 2>&1; then
  echo "FAIL: mbaudit accepted a mutated trace" >&2
  exit 1
fi
rm -rf "$audit_dir"

echo "== checkpoint/restore equivalence per preset =="
# For every shipped preset: run cold, run again writing a mid-flight MBCKPT1
# checkpoint, then restore from it — all three reports must be byte-identical
# (the ASan build also shakes memory bugs out of the save/load paths). The
# checkpoint tick is chosen inside the fast slice's runtime for every preset.
ckpt_dir="$build/ci-ckpt"
mkdir -p "$ckpt_dir"
while read -r preset; do
  "$build/tools/mbsim" --preset="$preset" --workload=429.mcf --instrs=10000 \
    > "$ckpt_dir/cold.txt"
  "$build/tools/mbsim" --preset="$preset" --workload=429.mcf --instrs=10000 \
    --checkpoint-at=15000000 --checkpoint="$ckpt_dir/ck.mbk" \
    > "$ckpt_dir/save.txt"
  "$build/tools/mbsim" --preset="$preset" --workload=429.mcf --instrs=10000 \
    --restore-from="$ckpt_dir/ck.mbk" > "$ckpt_dir/restore.txt"
  cmp "$ckpt_dir/cold.txt" "$ckpt_dir/save.txt" || {
    echo "FAIL: checkpointing perturbed the run for preset $preset" >&2; exit 1; }
  cmp "$ckpt_dir/cold.txt" "$ckpt_dir/restore.txt" || {
    echo "FAIL: restore diverged from cold run for preset $preset" >&2; exit 1; }
  echo "checkpoint/restore ok: $preset"
done < <("$build/tools/mblint" --list-presets)

echo "== resumable sweep journal =="
# A sweep interrupted after its first completed point and resumed must print
# the same table as an uninterrupted one (seed folding keyed to original
# point indices), and a journal from a different sweep must be refused.
"$build/tools/mbsim" --sweep --workload=429.mcf --instrs=10000 --jobs=1 \
  --journal="$ckpt_dir/full.jsonl" > "$ckpt_dir/sweep-full.txt"
head -n 2 "$ckpt_dir/full.jsonl" > "$ckpt_dir/partial.jsonl"
"$build/tools/mbsim" --sweep --workload=429.mcf --instrs=10000 --jobs=1 \
  --resume="$ckpt_dir/partial.jsonl" > "$ckpt_dir/sweep-resumed.txt"
cmp "$ckpt_dir/sweep-full.txt" "$ckpt_dir/sweep-resumed.txt" || {
  echo "FAIL: resumed sweep diverged from the uninterrupted run" >&2; exit 1; }
if "$build/tools/mbsim" --sweep --workload=429.mcf --instrs=10000 --seed=999 \
     --resume="$ckpt_dir/partial.jsonl" >/dev/null 2>&1; then
  echo "FAIL: --resume accepted a journal from a different sweep" >&2
  exit 1
fi
echo "sweep journal resume ok"
rm -rf "$ckpt_dir"

echo "== mbserve serving layer =="
# Three live checks of the daemon, all on the ASan+UBSan binaries (both the
# daemon and the --client one-shot run sanitized — this IS the smoke client):
#   1. double submit over the socket: the second session must simulate
#      nothing and its point line must be byte-identical to the cold one
#      modulo the cached flag;
#   2. SIGKILL mid-sweep, restart over the same --journal: the resumed
#      daemon completes exactly the remaining points (pre-kill cache entries
#      untouched, one accepted + one completed journal line, resubmission
#      fully memoized);
#   3. malformed specs produce MB-SRV error events without killing the
#      session.
srv_dir="$build/ci-serve"
rm -rf "$srv_dir"
mkdir -p "$srv_dir"
sock="$srv_dir/mb.sock"

"$build/tools/mbserve" --socket="$sock" --cache-dir="$srv_dir/cache1" &
srv_pid=$!
for _ in $(seq 100); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { echo "FAIL: mbserve did not create $sock" >&2; exit 1; }
spec='{"verb":"submit","id":"ci","workload":"429.mcf","instrs":8000,"seed":7}'
"$build/tools/mbserve" --client --socket="$sock" --spec="$spec" \
  > "$srv_dir/cold.jsonl"
"$build/tools/mbserve" --client --socket="$sock" --spec="$spec" \
  > "$srv_dir/hot.jsonl"
grep -q '"cached":1,"simulated":0' "$srv_dir/hot.jsonl" || {
  kill "$srv_pid" 2>/dev/null || true
  echo "FAIL: second submit was not fully served from the memo cache" >&2
  exit 1; }
grep '"event":"point"' "$srv_dir/cold.jsonl" \
  | sed 's/"cached":false/"cached":true/' > "$srv_dir/cold-points.jsonl"
grep '"event":"point"' "$srv_dir/hot.jsonl" > "$srv_dir/hot-points.jsonl"
cmp "$srv_dir/cold-points.jsonl" "$srv_dir/hot-points.jsonl" || {
  kill "$srv_pid" 2>/dev/null || true
  echo "FAIL: cached point bytes diverge from the cold run" >&2
  exit 1; }
if "$build/tools/mbserve" --client --socket="$sock" \
     --spec='{"verb":"frobnicate"}' > "$srv_dir/bad.jsonl"; then
  kill "$srv_pid" 2>/dev/null || true
  echo "FAIL: client exited 0 on a rejected spec" >&2
  exit 1
fi
grep -q 'MB-SRV-004' "$srv_dir/bad.jsonl" || {
  kill "$srv_pid" 2>/dev/null || true
  echo "FAIL: unknown verb did not produce MB-SRV-004" >&2
  exit 1; }
kill "$srv_pid" 2>/dev/null || true
wait "$srv_pid" 2>/dev/null || true
echo "mbserve cache-hit byte identity ok"

# SIGKILL mid-sweep + journal resume. --sweep-jobs=1 serializes the killed
# daemon's points so the kill reliably lands with most of the sweep still
# outstanding (the restarted daemon drains the remainder at full width). A
# SIGKILL mid-store can leave a *.tmp.<pid> file behind, so entry listings
# filter to committed *.mbr files.
journal="$srv_dir/journal.jsonl"
cache2="$srv_dir/cache2"
# The killed daemon left its socket FILE behind (SIGTERM skips cleanup), so
# remove it first — otherwise the stale file satisfies the bind wait below
# and the client connects before the new daemon is listening.
rm -f "$sock"
"$build/tools/mbserve" --socket="$sock" --cache-dir="$cache2" \
  --journal="$journal" --sweep-jobs=1 &
srv_pid=$!
for _ in $(seq 100); do [ -S "$sock" ] && break; sleep 0.1; done
sweep='{"verb":"submit","id":"sw","workload":"429.mcf","sweep":true,"instrs":100000,"seed":3}'
"$build/tools/mbserve" --client --socket="$sock" --spec="$sweep" \
  > "$srv_dir/sweep1.jsonl" 2>/dev/null &
cli_pid=$!
for _ in $(seq 600); do
  n=$(ls "$cache2" 2>/dev/null | grep -c '\.mbr$' || true)
  [ "$n" -ge 2 ] && break
  sleep 0.1
done
[ "$n" -ge 2 ] || {
  kill -9 "$srv_pid" 2>/dev/null || true
  echo "FAIL: sweep cached $n points in 60s; cannot stage a mid-sweep kill" >&2
  exit 1; }
kill -9 "$srv_pid" 2>/dev/null || true
wait "$cli_pid" 2>/dev/null || true  # connection drop: non-zero expected
wait "$srv_pid" 2>/dev/null || true
{ ls "$cache2" | grep '\.mbr$' || true; } | sort > "$srv_dir/pre-kill-entries.txt"
pre_n=$(grep -c . "$srv_dir/pre-kill-entries.txt" || true)
grep -q '"completed":"sw"' "$journal" && {
  echo "FAIL: kill landed after sweep completion; nothing to resume" >&2
  exit 1; }

# Restart over the same journal in stdio mode with stdin at EOF: the only
# work is the resumed job, which the daemon drains before exiting 0.
"$build/tools/mbserve" --stdio --cache-dir="$cache2" --journal="$journal" \
  < /dev/null > "$srv_dir/resume.jsonl" 2> "$srv_dir/resume.err"
grep -q 'resuming job sw' "$srv_dir/resume.err" || {
  echo "FAIL: restarted daemon did not resume the journaled job" >&2
  exit 1; }
grep -q '"completed":"sw"' "$journal" || {
  echo "FAIL: resumed job never journaled its completion" >&2
  exit 1; }
[ "$(grep -c '"accepted":"sw"' "$journal")" = 1 ] || {
  echo "FAIL: journal re-accepted the resumed job (duplicate run)" >&2
  exit 1; }
# Pre-kill entries must have survived untouched (remaining points ran
# exactly once; completed ones were served from the cache, not re-stored).
{ ls "$cache2" | grep '\.mbr$' || true; } | sort > "$srv_dir/post-resume-entries.txt"
comm -23 "$srv_dir/pre-kill-entries.txt" "$srv_dir/post-resume-entries.txt" \
  | grep -q . && {
  echo "FAIL: resume dropped pre-kill cache entries" >&2
  exit 1; }
post_n=$(grep -c . "$srv_dir/post-resume-entries.txt" || true)
[ "$post_n" -gt "$pre_n" ] || {
  echo "FAIL: resume simulated nothing ($pre_n -> $post_n entries)" >&2
  exit 1; }
# And the whole sweep is now memoized: resubmitting simulates nothing.
printf '%s\n' "$sweep" \
  | "$build/tools/mbserve" --stdio --cache-dir="$cache2" \
  > "$srv_dir/sweep2.jsonl"
grep -q '"simulated":0' "$srv_dir/sweep2.jsonl" || {
  echo "FAIL: resubmitted sweep re-simulated memoized points" >&2
  exit 1; }
rm -rf "$srv_dir"
echo "mbserve SIGKILL + journal resume ok"

echo "== perf harness (recorded, non-gating) =="
# Host-throughput trajectory: build mbperf WITHOUT sanitizers (ASan skews
# throughput ~5-10x, which would drown any real regression in the diff
# against the committed baseline) in its own build tree, emit
# BENCH_PERF.json next to it, and diff events/sec against
# bench/perf_baseline.txt. Warn-only by design: shared CI hosts are noisy;
# a WARN line in the log is the signal to investigate, not a gate failure.
build_perf="${build}-perf"
cmake -B "$build_perf" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_perf" -j"$(nproc)" --target mbperf
# --serve records the mbserve memo-cache cold/cached latencies and the
# snapshot-LRU hit rate into the same MBPERF1 record (a "serve" block).
# --shard-bench records serial vs --shards=4 wall clock on the multicore
# fig.8 configuration (a "shard" block), with the host's hardware thread
# count alongside so the ratio is interpretable — a box with no free cores
# cannot show a speedup and that is not a regression.
"$build_perf/bench/mbperf" --out="$build_perf/BENCH_PERF.json" \
  --baseline="$repo/bench/perf_baseline.txt" --serve --shard-bench=4
echo "perf record: $build_perf/BENCH_PERF.json"

echo "== clang-tidy over src/ =="
if command -v clang-tidy >/dev/null 2>&1; then
  # run-clang-tidy parallelises when present; fall back to a plain loop.
  files=$(find "$repo/src" -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "$build" -quiet $files
  else
    status=0
    for f in $files; do
      clang-tidy -p "$build" --quiet "$f" || status=1
    done
    [ "$status" -eq 0 ]
  fi
  static_tidy="pass"
elif [ "${MB_REQUIRE_TIDY:-0}" = "1" ]; then
  echo "FAIL: clang-tidy not installed but MB_REQUIRE_TIDY=1" >&2
  exit 1
else
  static_tidy="skipped (not installed)"
  echo "clang-tidy not installed; skipping tidy pass (build+sanitizer gate still enforced)"
fi

echo "== static-analysis summary =="
# One block to scan instead of four scattered stage logs. "warn" means the
# stage reported findings but was not enforced on this run; set the listed
# switch (or MB_REQUIRE_STATIC=1 for all of them) to make it a hard gate.
printf '  %-14s %s\n' \
  "mblint"      "$static_mblint" \
  "mbdetcheck"  "$static_det   (enforce: MB_REQUIRE_DET=1)" \
  "mbsnapcheck" "$static_snap   (enforce: MB_REQUIRE_SNAP=1)" \
  "clang-tidy"  "$static_tidy   (enforce: MB_REQUIRE_TIDY=1)"
echo "  MB_REQUIRE_STATIC=1 enforces all of the above at once."

echo "== CI gate passed =="
