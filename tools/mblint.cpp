// mblint — static configuration linter for the μbank simulator.
//
// Validates experiment configurations *before* any simulation tick runs:
// geometry cross-invariants, address-map bit coverage, timing sanity, and
// Table I conformance, each reported as a structured diagnostic with a
// stable MB-XXX-NNN code (registry: DESIGN.md §"Static analysis &
// diagnostics"). Exits 0 when no errors were found, 1 on any error —
// wired into ctest so every shipped preset stays lintable.
//
//   mblint --all-presets             lint every shipped named preset
//   mblint --preset=tsi-baseline     lint one named preset
//   mblint --list-presets            print the preset names
//   mblint --nw=4 --nb=4 --ib=9      lint an ad-hoc config (mbsim flags)
//   mblint ... --json                machine-readable diagnostics on stdout
//
// Ad-hoc config flags mirror tools/mbsim.cpp:
//   --nw=N --nb=N --phy=KIND --policy=KIND --scheduler=KIND --ib=N
//   --queue=N --channels=N --xor-bank-hash --per-bank-refresh
//   --scale-act-window
//
// `--version` prints the tool + format versions; JSON output embeds the
// same string in a top-level "tool" field.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/config_lint.hpp"
#include "common/string_util.hpp"
#include "common/version.hpp"
#include "sim/experiment.hpp"

namespace {

using namespace mb;

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "mblint: %s\n(see the header of tools/mblint.cpp for flags)\n",
               msg);
  std::exit(2);
}

bool matchFlag(const std::string& arg, const std::string& name, std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (!startsWith(arg, prefix)) return false;
  *value = arg.substr(prefix.size());
  return true;
}

/// Lint one config under a display name; prints findings, returns clean?.
bool lintOne(const std::string& name, const sim::SystemConfig& cfg, bool json,
             std::string* jsonOut) {
  analysis::DiagnosticEngine engine;
  analysis::ConfigLinter linter(engine);
  linter.lintSystem(cfg);
  if (json) {
    *jsonOut += "{\"config\":\"" + analysis::jsonEscape(name) +
                "\",\"diagnostics\":" + engine.renderJson() + "}";
  } else if (engine.empty()) {
    std::printf("%-40s ok\n", name.c_str());
  } else {
    std::printf("%-40s %lld error(s), %lld warning(s)\n", name.c_str(),
                static_cast<long long>(engine.count(analysis::Severity::Error) +
                                       engine.count(analysis::Severity::Fatal)),
                static_cast<long long>(engine.count(analysis::Severity::Warning)));
    std::printf("%s", engine.renderText().c_str());
  }
  return !engine.hasErrors();
}

}  // namespace

int main(int argc, char** argv) {
  sim::SystemConfig cfg = sim::tsiBaselineConfig();
  bool json = false;
  bool allPresets = false;
  bool adHoc = false;
  std::string presetName;
  std::string value;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::printf("%s", versionBanner("mblint").c_str());
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--all-presets") {
      allPresets = true;
    } else if (arg == "--list-presets") {
      for (const auto& p : sim::shippedPresets()) std::printf("%s\n", p.name.c_str());
      return 0;
    } else if (matchFlag(arg, "preset", &value)) {
      if (value.empty()) usage("--preset requires a name (try --list-presets)");
      presetName = value;
    } else if (matchFlag(arg, "nw", &value)) {
      cfg.ubank.nW = std::atoi(value.c_str());
      adHoc = true;
    } else if (matchFlag(arg, "nb", &value)) {
      cfg.ubank.nB = std::atoi(value.c_str());
      adHoc = true;
    } else if (matchFlag(arg, "phy", &value)) {
      if (value == "ddr3-pcb") cfg.phy = interface::PhyKind::Ddr3Pcb;
      else if (value == "ddr3-tsi") cfg.phy = interface::PhyKind::Ddr3Tsi;
      else if (value == "lpddr-tsi") cfg.phy = interface::PhyKind::LpddrTsi;
      else if (value == "hmc") cfg.phy = interface::PhyKind::Hmc;
      else usage("unknown --phy");
      adHoc = true;
    } else if (matchFlag(arg, "policy", &value)) {
      if (value == "open") cfg.pagePolicy = core::PolicyKind::Open;
      else if (value == "close") cfg.pagePolicy = core::PolicyKind::Close;
      else if (value == "minimalist") cfg.pagePolicy = core::PolicyKind::MinimalistOpen;
      else if (value == "local") cfg.pagePolicy = core::PolicyKind::LocalBimodal;
      else if (value == "global") cfg.pagePolicy = core::PolicyKind::GlobalBimodal;
      else if (value == "tournament") cfg.pagePolicy = core::PolicyKind::Tournament;
      else if (value == "perfect") cfg.pagePolicy = core::PolicyKind::Perfect;
      else usage("unknown --policy");
      adHoc = true;
    } else if (matchFlag(arg, "scheduler", &value)) {
      if (value == "fcfs") cfg.scheduler = mc::SchedulerKind::Fcfs;
      else if (value == "frfcfs") cfg.scheduler = mc::SchedulerKind::FrFcfs;
      else if (value == "parbs") cfg.scheduler = mc::SchedulerKind::ParBs;
      else usage("unknown --scheduler");
      adHoc = true;
    } else if (matchFlag(arg, "ib", &value)) {
      cfg.interleaveBaseBit = std::atoi(value.c_str());
      adHoc = true;
    } else if (matchFlag(arg, "queue", &value)) {
      cfg.queueDepth = std::atoi(value.c_str());
      adHoc = true;
    } else if (matchFlag(arg, "channels", &value)) {
      cfg.channels = std::atoi(value.c_str());
      adHoc = true;
    } else if (arg == "--xor-bank-hash") {
      cfg.xorBankHash = true;
      adHoc = true;
    } else if (arg == "--per-bank-refresh") {
      cfg.perBankRefresh = true;
      adHoc = true;
    } else if (arg == "--scale-act-window") {
      cfg.scaleActWindowWithRowSize = true;
      adHoc = true;
    } else {
      usage(("unrecognized argument: " + arg).c_str());
    }
  }

  std::vector<sim::NamedConfig> toLint;
  if (allPresets) {
    toLint = sim::shippedPresets();
  } else if (!presetName.empty()) {
    for (auto& p : sim::shippedPresets()) {
      if (p.name == presetName) toLint.push_back(std::move(p));
    }
    if (toLint.empty()) usage(("unknown preset: " + presetName).c_str());
  } else {
    // Ad-hoc config from flags (defaults to the TSI baseline when no config
    // flag was given, which doubles as a self-check).
    toLint.push_back({adHoc ? "<command line>" : "tsi-baseline", cfg});
  }

  bool clean = true;
  std::string jsonOut =
      "{\"tool\":\"" + analysis::jsonEscape(versionString()) + "\",\"results\":[";
  for (std::size_t i = 0; i < toLint.size(); ++i) {
    if (i) jsonOut += ',';
    clean = lintOne(toLint[i].name, toLint[i].cfg, json, &jsonOut) && clean;
  }
  jsonOut += "]}";
  if (json) std::printf("%s\n", jsonOut.c_str());
  if (!json)
    std::printf("%s\n", clean ? "mblint: all configurations clean"
                              : "mblint: errors found");
  return clean ? 0 : 1;
}
