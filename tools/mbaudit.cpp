// mbaudit — offline auditor for recorded DRAM command traces.
//
// Replays an MBCMDT1 command trace (written by `mbsim --record-cmds=PATH`,
// see src/mc/command_log.hpp) through an independent protocol interpreter
// and re-verifies everything the live run claimed: Table-I timing
// constraints, bank-state legality, address-map round-trip consistency,
// and the total DRAM energy recomputed from the stream against the live
// meter totals in the trace trailer (src/analysis/trace_audit.hpp).
//
//   mbaudit CMDS.mbc                  audit, human-readable report
//   mbaudit CMDS.mbc --json           machine-readable report (one object)
//   mbaudit CMDS.mbc --geometry=NAME  also cross-check the trace header
//                                     against shipped preset NAME
//                                     (single-threaded run shape, as
//                                     recorded by tools/ci.sh); mismatches
//                                     are MB-AUD-021
//   mbaudit CMDS.mbc --mutate=KIND [--seed=N]
//                                     self-test mode: plant one seeded
//                                     defect (see trace_audit.hpp) before
//                                     auditing — the audit MUST now fail
//                                     with the mutation's expected code
//
// Exit status: 0 clean audit, 1 audit found violations, 2 usage error /
// unreadable or malformed trace / inapplicable mutation.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/trace_audit.hpp"
#include "common/string_util.hpp"
#include "common/version.hpp"
#include "sim/experiment.hpp"

namespace {

using namespace mb;

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr,
               "mbaudit: %s\nusage: mbaudit TRACE.mbc [--json] "
               "[--geometry=PRESET] [--mutate=KIND] [--seed=N]\n",
               msg);
  std::exit(2);
}

bool matchFlag(const std::string& arg, const std::string& name, std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (!startsWith(arg, prefix)) return false;
  *value = arg.substr(prefix.size());
  return true;
}

void printJson(const std::string& path, const analysis::TraceAuditResult& res,
               const analysis::DiagnosticEngine& diags) {
  std::printf("{\"tool\":\"%s\",", analysis::jsonEscape(versionString()).c_str());
  std::printf("\"file\":\"%s\",", analysis::jsonEscape(path).c_str());
  std::printf("\"events\":%lld,\"rejected\":%lld,",
              static_cast<long long>(res.eventsAudited),
              static_cast<long long>(res.commandsRejected));
  std::printf(
      "\"recomputed\":{\"act_pre_pj\":%.6g,\"rdwr_pj\":%.6g,\"io_pj\":%.6g,"
      "\"static_pj\":%.6g,\"total_pj\":%.6g,\"activations\":%lld,"
      "\"cas_ops\":%lld,\"refreshes\":%lld},",
      res.actPre, res.rdwr, res.io, res.staticEnergy, res.recomputedTotal(),
      static_cast<long long>(res.activations), static_cast<long long>(res.casOps),
      static_cast<long long>(res.refreshes));
  std::printf("\"clean\":%s,", diags.hasErrors() ? "false" : "true");
  std::printf("\"diagnostics\":%s}\n", diags.renderJson().c_str());
}

void printText(const std::string& path, const analysis::TraceAuditResult& res,
               const analysis::DiagnosticEngine& diags) {
  std::printf("trace               %s\n", path.c_str());
  std::printf("events audited      %lld (%lld rejected)\n",
              static_cast<long long>(res.eventsAudited),
              static_cast<long long>(res.commandsRejected));
  std::printf("recomputed energy   ACT/PRE %.4g pJ, RD/WR %.4g pJ, I/O %.4g pJ, "
              "static %.4g pJ (total %.4g pJ)\n",
              res.actPre, res.rdwr, res.io, res.staticEnergy, res.recomputedTotal());
  std::printf("recomputed counts   %lld ACT, %lld CAS, %lld REF\n",
              static_cast<long long>(res.activations),
              static_cast<long long>(res.casOps),
              static_cast<long long>(res.refreshes));
  if (diags.empty()) {
    std::printf("verdict             CLEAN\n");
    return;
  }
  std::printf("\n%s", diags.renderText().c_str());
  std::printf("verdict             %s (%lld error(s), %lld warning(s))\n",
              diags.hasErrors() ? "VIOLATIONS" : "CLEAN",
              static_cast<long long>(diags.count(analysis::Severity::Error) +
                                     diags.count(analysis::Severity::Fatal)),
              static_cast<long long>(diags.count(analysis::Severity::Warning)));
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string preset;
  std::string mutate;
  std::uint64_t seed = 1;
  bool json = false;
  std::string value;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::printf("%s", versionBanner("mbaudit").c_str());
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (matchFlag(arg, "geometry", &value)) {
      preset = value;
    } else if (matchFlag(arg, "mutate", &value)) {
      mutate = value;
    } else if (matchFlag(arg, "seed", &value)) {
      seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (!startsWith(arg, "--") && path.empty()) {
      path = arg;
    } else {
      usage(("unrecognized argument: " + arg).c_str());
    }
  }
  if (path.empty()) usage("expected a trace file argument");

  // Load. Malformed input is a structured MB-TRC diagnostic, not an abort.
  analysis::DiagnosticEngine loadDiags;
  auto trace = mc::readCmdTrace(path, loadDiags);
  if (!trace.has_value()) {
    std::fprintf(stderr, "%s", loadDiags.renderText().c_str());
    return 2;
  }

  // Optional self-test mutation.
  if (!mutate.empty()) {
    const auto kind = analysis::traceMutationFromName(mutate);
    if (!kind.has_value()) {
      std::string known;
      for (int k = 0; k < analysis::kTraceMutationCount; ++k) {
        if (k > 0) known += ", ";
        known += analysis::traceMutationName(static_cast<analysis::TraceMutation>(k));
      }
      usage(("unknown --mutate kind (one of: " + known + ")").c_str());
    }
    if (!analysis::applyTraceMutation(*trace, *kind, seed)) {
      std::fprintf(stderr,
                   "mbaudit: trace has no eligible victim for mutation %s\n",
                   mutate.c_str());
      return 2;
    }
    std::fprintf(stderr, "mbaudit: planted %s (seed %llu), expecting %s\n",
                 mutate.c_str(), static_cast<unsigned long long>(seed),
                 analysis::traceMutationExpectedCode(*kind));
  }

  analysis::TraceAuditOptions opts;
  mc::CmdTraceConfig expect;
  if (!preset.empty()) {
    bool found = false;
    for (const auto& p : sim::shippedPresets()) {
      if (p.name != preset) continue;
      // Single-threaded run shape (one populated channel, §VI-A) — the
      // shape tools/ci.sh and the audit tests record presets with.
      expect = sim::cmdTraceConfigFor(p.cfg, sim::WorkloadSpec::spec(""));
      found = true;
      break;
    }
    if (!found) usage(("unknown preset: " + preset).c_str());
    opts.expectConfig = &expect;
  }

  analysis::DiagnosticEngine diags;
  const auto res = analysis::auditCmdTrace(*trace, diags, opts);
  if (json)
    printJson(path, res, diags);
  else
    printText(path, res, diags);
  return diags.hasErrors() ? 1 : 0;
}
