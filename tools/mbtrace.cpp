// mbtrace — record synthetic traces to files for later replay.
//
// Produces one trace file per core ("<prefix>.<core>.mbt") from a named
// workload profile, so experiments can be pinned to an exact input stream
// independent of the generator's evolution — and so real traces, converted
// into the same format, can be dropped in (see trace/trace_file.hpp for
// the layout).
//
//   mbtrace --app=429.mcf --out=/tmp/mcf --records=200000 --cores=4 --seed=1
//   mbsim   --workload=trace:/tmp/mcf
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/string_util.hpp"
#include "common/version.hpp"
#include "trace/profiles.hpp"
#include "trace/trace_file.hpp"

namespace {

using namespace mb;

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr,
               "mbtrace: %s\nusage: mbtrace --app=NAME --out=PREFIX"
               " [--records=N] [--cores=N] [--seed=N]\n",
               msg);
  std::exit(2);
}

bool matchFlag(const std::string& arg, const std::string& name, std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (!startsWith(arg, prefix)) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string app;
  std::string out;
  std::int64_t records = 100000;
  int cores = 4;
  std::uint64_t seed = 12345;

  std::string value;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::printf("%s", versionBanner("mbtrace").c_str());
      return 0;
    } else if (matchFlag(arg, "app", &value)) {
      app = value;
    } else if (matchFlag(arg, "out", &value)) {
      out = value;
    } else if (matchFlag(arg, "records", &value)) {
      records = std::atoll(value.c_str());
    } else if (matchFlag(arg, "cores", &value)) {
      cores = std::atoi(value.c_str());
    } else if (matchFlag(arg, "seed", &value)) {
      seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else {
      usage(("unrecognized argument: " + arg).c_str());
    }
  }
  if (app.empty()) usage("--app is required");
  if (out.empty()) usage("--out is required");
  if (records <= 0 || cores <= 0) usage("--records and --cores must be positive");

  for (int c = 0; c < cores; ++c) {
    trace::SyntheticParams p = trace::specProfile(app).params;
    p.baseAddr = static_cast<std::uint64_t>(c) << 33;
    p.seed = seed * 1000003 + static_cast<std::uint64_t>(c);
    trace::SyntheticSource src(p);
    const std::string path = trace::traceFilePath(out, c);
    trace::recordTrace(src, path, records);
    std::printf("wrote %lld records to %s\n", static_cast<long long>(records),
                path.c_str());
  }
  return 0;
}
