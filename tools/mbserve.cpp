// mbserve — persistent simulation service with memoized results.
//
// Server modes (pick at least one transport):
//   mbserve --socket=PATH [--cache-dir=DIR] [--journal=PATH]
//           [--inflight=N] [--sweep-jobs=N] [--shards=N]
//           [--snapshot-budget-mb=N]
//   mbserve --stdio ...            serve one session over stdin/stdout
//
// Client mode (one-shot):
//   mbserve --client --socket=PATH --spec='{"verb":...}' [--spec=...]
//   mbserve --client --socket=PATH        read request lines from stdin
//
// The client sends each request line, then streams every response event to
// stdout until all requests have reached a terminal event (done / status /
// canceled / flushed / bye / error). Exit 0 when no error events arrived,
// 1 otherwise, 2 on usage or connection failure.
//
// Flags:
//   --socket=PATH           Unix-domain socket to listen on / connect to
//   --stdio                 serve stdin/stdout (EOF drains and exits)
//   --cache-dir=DIR         memoized-result store (default: mbserve-cache)
//   --journal=PATH          accept journal; existing file auto-resumes
//   --inflight=N            concurrent jobs (default 2)
//   --sweep-jobs=N          SweepRunner workers per job (default: share
//                           MB_JOBS / hardware threads across the slots
//                           and the per-simulation shard workers)
//   --shards=N              channel-shard workers inside each simulation
//                           (default 1). Results are byte-identical at any
//                           value, so the result cache ignores this knob
//   --snapshot-budget-mb=N  warmup-snapshot LRU budget (default 256)
//   --version               print tool + format versions
//
// Protocol grammar, event set, and the MB-SRV-* diagnostic registry:
// DESIGN.md §"Serving layer"; a copy-paste session lives in README.md.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json_mini.hpp"
#include "common/string_util.hpp"
#include "common/version.hpp"
#include "serve/server.hpp"

namespace {

using namespace mb;

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "mbserve: %s\n(see the header of tools/mbserve.cpp)\n", msg);
  std::exit(2);
}

bool matchFlag(const std::string& arg, const std::string& name, std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (!startsWith(arg, prefix)) return false;
  *value = arg.substr(prefix.size());
  return true;
}

long parsePositive(const std::string& value, const char* flag) {
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size() || v <= 0)
    usage((std::string(flag) + " needs a positive integer").c_str());
  return v;
}

/// An event line's terminality decides when the one-shot client may exit:
/// every request produces exactly one terminal event (submit → done or
/// error; status/cancel/flush-cache/shutdown → their echo or error).
bool isTerminalEvent(const std::string& line) {
  json::JVal v;
  json::JParser parser(line);
  if (!parser.parse(&v) || v.t != json::JVal::T::Obj) return false;
  const json::JVal* ev = v.get("event");
  if (ev == nullptr || ev->t != json::JVal::T::Str) return false;
  return ev->s == "done" || ev->s == "error" || ev->s == "status" ||
         ev->s == "canceled" || ev->s == "flushed" || ev->s == "bye";
}

int runClient(const std::string& socketPath, const std::vector<std::string>& specs) {
  if (socketPath.empty()) usage("--client needs --socket=PATH");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.size() >= sizeof addr.sun_path) usage("socket path too long");
  std::strncpy(addr.sun_path, socketPath.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    std::fprintf(stderr, "mbserve: cannot connect to %s: %s\n", socketPath.c_str(),
                 std::strerror(errno));
    return 2;
  }

  std::vector<std::string> lines = specs;
  if (lines.empty()) {  // no --spec flags: read request lines from stdin
    std::string line;
    for (int c; (c = std::fgetc(stdin)) != EOF;) {
      if (c == '\n') {
        if (!line.empty()) lines.push_back(line);
        line.clear();
      } else {
        line += static_cast<char>(c);
      }
    }
    if (!line.empty()) lines.push_back(line);
  }
  if (lines.empty()) usage("--client has nothing to send (use --spec or stdin)");

  for (const auto& line : lines) {
    const std::string out = line + "\n";
    if (::write(fd, out.data(), out.size()) != static_cast<ssize_t>(out.size())) {
      std::fprintf(stderr, "mbserve: send failed\n");
      ::close(fd);
      return 2;
    }
  }

  std::size_t awaiting = lines.size();
  bool sawError = false;
  std::string inbuf;
  char buf[4096];
  while (awaiting > 0) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;  // daemon gone mid-session
    inbuf.append(buf, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = inbuf.find('\n')) != std::string::npos) {
      const std::string line = inbuf.substr(0, nl);
      inbuf.erase(0, nl + 1);
      if (line.empty()) continue;
      std::printf("%s\n", line.c_str());
      std::fflush(stdout);
      if (isTerminalEvent(line)) {
        if (line.find("\"event\":\"error\"") != std::string::npos) sawError = true;
        if (awaiting > 0) --awaiting;
      }
    }
  }
  ::close(fd);
  if (awaiting > 0) {
    std::fprintf(stderr, "mbserve: connection closed with %zu responses pending\n",
                 awaiting);
    return 2;
  }
  return sawError ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions opts;
  opts.cacheDir = "mbserve-cache";
  bool client = false;
  std::vector<std::string> specs;
  std::string value;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::printf("%s", versionBanner("mbserve").c_str());
      return 0;
    }
    if (arg == "--client") {
      client = true;
    } else if (arg == "--stdio") {
      opts.stdio = true;
    } else if (matchFlag(arg, "socket", &value)) {
      opts.socketPath = value;
    } else if (matchFlag(arg, "cache-dir", &value)) {
      opts.cacheDir = value;
    } else if (matchFlag(arg, "journal", &value)) {
      opts.journalPath = value;
    } else if (matchFlag(arg, "inflight", &value)) {
      opts.inflight = static_cast<int>(parsePositive(value, "--inflight"));
    } else if (matchFlag(arg, "sweep-jobs", &value)) {
      opts.jobsPerSweep = static_cast<int>(parsePositive(value, "--sweep-jobs"));
    } else if (matchFlag(arg, "shards", &value)) {
      opts.shards = static_cast<int>(parsePositive(value, "--shards"));
    } else if (matchFlag(arg, "snapshot-budget-mb", &value)) {
      opts.snapshotBudget = static_cast<std::size_t>(
                                parsePositive(value, "--snapshot-budget-mb"))
                            << 20;
    } else if (matchFlag(arg, "spec", &value)) {
      specs.push_back(value);
    } else {
      usage(("unknown flag: " + arg).c_str());
    }
  }

  if (client) return runClient(opts.socketPath, specs);
  if (!specs.empty()) usage("--spec is only valid with --client");
  if (opts.socketPath.empty() && !opts.stdio)
    usage("server mode needs --socket=PATH and/or --stdio");
  return serve::Server(std::move(opts)).run();
}
