// Quickstart: build a TSI-based μbank memory system, run one
// memory-intensive SPEC-like workload on it, and compare against the
// unpartitioned baseline.
//
//   ./examples/quickstart [app-name]   (default 429.mcf)
#include <cstdio>
#include <string>

#include "dram/area_model.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mb;
  const std::string app = argc > 1 ? argv[1] : "429.mcf";

  // Baseline: LPDDR-on-interposer memory with conventional banks.
  sim::SystemConfig base = sim::tsiBaselineConfig();
  sim::applySlice(base, sim::slicePresetFromEnv(), /*multicore=*/false);

  // μbank system: each bank split 4x along wordlines (rows shrink to 2 KB)
  // and 4x along bitlines (4x more simultaneously open rows).
  sim::SystemConfig ubank = base;
  ubank.ubank = dram::UbankConfig{4, 4};

  std::printf("workload: %s\n", app.c_str());
  const auto baseRun = sim::runSpecApp(app, base);
  const auto ubankRun = sim::runSpecApp(app, ubank);

  const dram::AreaModel area;
  std::printf("\n%-28s %12s %12s\n", "metric", "(nW,nB)=(1,1)", "(4,4)");
  std::printf("%-28s %12.3f %12.3f\n", "IPC", baseRun.systemIpc, ubankRun.systemIpc);
  std::printf("%-28s %12.3f %12.3f\n", "row-buffer hit rate", baseRun.rowHitRate,
              ubankRun.rowHitRate);
  std::printf("%-28s %12.1f %12.1f\n", "avg read latency (ns)",
              baseRun.avgReadLatencyNs, ubankRun.avgReadLatencyNs);
  std::printf("%-28s %12.2f %12.2f\n", "DRAM energy (mJ)",
              (baseRun.energy.dramActPre + baseRun.energy.dramRdWr +
               baseRun.energy.io + baseRun.energy.dramStatic) * 1e-9,
              (ubankRun.energy.dramActPre + ubankRun.energy.dramRdWr +
               ubankRun.energy.io + ubankRun.energy.dramStatic) * 1e-9);
  std::printf("%-28s %12s %12.3f\n", "relative 1/EDP", "1.000",
              ubankRun.invEdp / baseRun.invEdp);
  std::printf("%-28s %12s %12.1f%%\n", "DRAM die area overhead", "-",
              area.overhead(dram::UbankConfig{4, 4}) * 100.0);
  std::printf("\nIPC gain: %.1f%%   (die area cost: %.1f%%)\n",
              (ubankRun.systemIpc / baseRun.systemIpc - 1.0) * 100.0,
              area.overhead(dram::UbankConfig{4, 4}) * 100.0);
  return 0;
}
