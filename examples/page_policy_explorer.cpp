// Page-management policy study: the memory-controller-designer scenario
// from §V of the paper.
//
// Runs one workload under every page-management policy the library provides
// (static open/close, minimalist-open, local and global bimodal predictors,
// the tournament predictor, and the perfect oracle) at a conventional and a
// μbank organization, and reports IPC, row hit rate, predictor hit rate,
// and read latency — the data behind the paper's claim that μbanks make a
// simple open-page policy sufficient.
//
//   ./examples/page_policy_explorer [app-name]   (default 429.mcf)
#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mb;
  const std::string app = argc > 1 ? argv[1] : "429.mcf";

  const std::vector<core::PolicyKind> policies = {
      core::PolicyKind::Close,         core::PolicyKind::Open,
      core::PolicyKind::MinimalistOpen, core::PolicyKind::LocalBimodal,
      core::PolicyKind::GlobalBimodal, core::PolicyKind::Tournament,
      core::PolicyKind::Perfect};

  for (const auto& ubank : {dram::UbankConfig{1, 1}, dram::UbankConfig{4, 4}}) {
    std::printf("=== %s on (nW,nB) = (%d,%d) ===\n", app.c_str(), ubank.nW, ubank.nB);
    std::printf("%-16s %8s %10s %12s %12s %10s\n", "policy", "IPC", "row hit",
                "predictor", "read ns", "queue occ");
    double openIpc = 0.0;
    for (auto policy : policies) {
      sim::SystemConfig cfg = sim::tsiBaselineConfig();
      sim::applySlice(cfg, sim::slicePresetFromEnv(), /*multicore=*/false);
      cfg.ubank = ubank;
      cfg.pagePolicy = policy;
      const auto r = sim::runSpecApp(app, cfg);
      if (policy == core::PolicyKind::Open) openIpc = r.systemIpc;
      std::printf("%-16s %8.3f %10.3f %12.3f %12.1f %10.2f\n",
                  core::policyKindName(policy).c_str(), r.systemIpc, r.rowHitRate,
                  r.predictorHitRate, r.avgReadLatencyNs, r.avgQueueOccupancy);
    }
    std::printf("(compare each row's IPC against open-page: %.3f)\n\n", openIpc);
  }
  std::printf(
      "the paper's §V conclusion: without ubanks, prediction-based policies\n"
      "buy real performance; with ubanks, plain open-page is within a few\n"
      "percent of the perfect oracle.\n");
  return 0;
}
