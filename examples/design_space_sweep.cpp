// Design-space exploration: the DRAM-architect scenario.
//
// A device architect must pick one μbank partitioning for a die under a
// strict area budget (the paper's industry constraint is ~3%, §VI-B). This
// example sweeps every (nW, nB) configuration, filters by the budget, and
// reports the best-IPC and best-EDP choices for a given workload.
//
//   ./examples/design_space_sweep [workload] [area-budget-%]
//   workload: a SPEC app name (default 450.soplex)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "dram/area_model.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mb;
  const std::string app = argc > 1 ? argv[1] : "450.soplex";
  const double budget = (argc > 2 ? std::atof(argv[2]) : 3.0) / 100.0;

  sim::SystemConfig base = sim::tsiBaselineConfig();
  sim::applySlice(base, sim::slicePresetFromEnv(), /*multicore=*/false);
  const auto baseline = sim::runSpecApp(app, base);
  const dram::AreaModel area;

  std::printf("workload %s, area budget %.1f%%\n\n", app.c_str(), budget * 100.0);
  std::printf("%-8s %8s %8s %8s %10s\n", "(nW,nB)", "area%", "rel IPC", "rel EDP",
              "in budget");

  struct Best {
    double metric = 0.0;
    int nW = 1, nB = 1;
  } bestIpc, bestEdp;

  for (int nW : sim::sweepAxis()) {
    for (int nB : sim::sweepAxis()) {
      sim::SystemConfig cfg = base;
      cfg.ubank = dram::UbankConfig{nW, nB};
      const auto r = sim::runSpecApp(app, cfg);
      const double relIpc = r.systemIpc / baseline.systemIpc;
      const double relEdp = r.invEdp / baseline.invEdp;
      const double overhead = area.overhead({nW, nB});
      const bool ok = overhead <= budget;
      std::printf("(%2d,%2d)  %7.1f%% %8.3f %8.3f %10s\n", nW, nB, overhead * 100.0,
                  relIpc, relEdp, ok ? "yes" : "no");
      if (ok && relIpc > bestIpc.metric) bestIpc = {relIpc, nW, nB};
      if (ok && relEdp > bestEdp.metric) bestEdp = {relEdp, nW, nB};
    }
  }
  std::printf(
      "\nwithin the %.1f%% budget:\n"
      "  best IPC:   (%d,%d) at %.3fx\n"
      "  best 1/EDP: (%d,%d) at %.3fx\n",
      budget * 100.0, bestIpc.nW, bestIpc.nB, bestIpc.metric, bestEdp.nW, bestEdp.nB,
      bestEdp.metric);
  return 0;
}
