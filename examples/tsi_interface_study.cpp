// Processor-memory interface study: the system-integrator scenario of §VI-D.
//
// Compares the three packaging/interface generations — DDR3 modules over
// PCB, DDR3-type stacks on a silicon interposer, and LPDDR-type dies on an
// interposer — on a 64-core multiprogrammed mix, reporting throughput,
// power by category, and energy-delay product, with and without μbanks.
//
//   ./examples/tsi_interface_study [mix-high|mix-blend]   (default mix-high)
#include <cstdio>
#include <string>

#include "interface/phy.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mb;
  const std::string mix = argc > 1 ? argv[1] : "mix-high";

  struct Row {
    const char* label;
    interface::PhyKind phy;
    dram::UbankConfig ubank;
  };
  const Row rows[] = {
      {"DDR3-PCB", interface::PhyKind::Ddr3Pcb, {1, 1}},
      {"DDR3-TSI", interface::PhyKind::Ddr3Tsi, {1, 1}},
      {"LPDDR-TSI", interface::PhyKind::LpddrTsi, {1, 1}},
      {"LPDDR-TSI+ubank(8,2)", interface::PhyKind::LpddrTsi, {8, 2}},
  };

  std::printf("%-22s %8s %9s %9s %9s | %s\n", "interface", "IPC", "mem W", "proc W",
              "rel EDP", "memory power: ACT/PRE share");
  double baseEdp = 0.0;
  for (const auto& row : rows) {
    sim::SystemConfig cfg = sim::tsiBaselineConfig();
    cfg.phy = row.phy;
    cfg.ubank = row.ubank;
    const auto phy = interface::PhyModel::make(row.phy);
    cfg.hier.numCores = 64;
    cfg.hier.coresPerCluster = 4;
    cfg.channels = phy.channels;
    sim::applySlice(cfg, sim::slicePresetFromEnv(), /*multicore=*/true);

    const auto r = sim::runSimulation(cfg, sim::WorkloadSpec::mix(mix));
    if (baseEdp == 0.0) baseEdp = r.invEdp;
    const double sec = toSeconds(r.elapsed);
    const double memW = (r.energy.dramActPre + r.energy.dramStatic +
                         r.energy.dramRdWr + r.energy.io) *
                        1e-12 / sec;
    const double procW = r.energy.processor * 1e-12 / sec;
    const double actShare =
        r.energy.dramActPre / (r.energy.dramActPre + r.energy.dramStatic +
                               r.energy.dramRdWr + r.energy.io);
    std::printf("%-22s %8.2f %9.2f %9.2f %9.3f | %.0f%%\n", row.label, r.systemIpc,
                memW, procW, r.invEdp / baseEdp, actShare * 100.0);
  }
  std::printf(
      "\nthe §VI-D story: TSI integration lifts throughput and efficiency on\n"
      "its own; the LPDDR PHY then strips I/O energy, leaving ACT/PRE as the\n"
      "dominant memory power term — which is exactly what ubanks attack.\n");
  return 0;
}
