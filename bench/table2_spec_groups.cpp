// Reproduces Table II: SPEC CPU2006 applications grouped by main-memory
// accesses per kilo-instruction (MAPKI) — and verifies the grouping against
// *measured* MAPKI from simulation, not just the profile parameters.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace mb;
  bench::printBanner("Table II", "SPEC CPU2006 MAPKI groups (profile vs measured)");

  sim::SystemConfig cfg = sim::tsiBaselineConfig();

  TablePrinter t({"group", "application", "profile MAPKI", "measured MAPKI"});
  for (auto group : {trace::SpecGroup::High, trace::SpecGroup::Med, trace::SpecGroup::Low}) {
    for (const auto& name : trace::specGroupMembers(group)) {
      const auto runs = bench::runWorkload(name, cfg);
      t.addRow({trace::specGroupName(group), name,
                formatDouble(trace::specProfile(name).params.mapki, 1),
                formatDouble(runs.front().mapki, 1)});
    }
  }
  t.print(std::cout);
  std::printf(
      "\npaper groups: spec-high has >= ~15 main-memory accesses per kilo\n"
      "instruction, spec-med a few, spec-low under ~1.5. Measured MAPKI\n"
      "includes fetch-for-ownership reads and dirty writebacks.\n");
  return 0;
}
