// Extension study: refresh granularity x μbank organization.
//
// All-bank refresh blocks a whole rank for tRFC (350 ns) every tREFI;
// per-bank refresh (LPDDR-style) rotates shorter tRFCpb (90 ns) windows
// through the banks so the rest of the rank keeps serving. With μbanks the
// blocked unit contains many row buffers, so confining refresh to one bank
// at a time also preserves more open-row state.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace mb;
  bench::printBanner("Extension", "all-bank vs per-bank refresh x ubank config");

  for (const char* workload : {"429.mcf", "470.lbm", "TPC-H"}) {
    std::printf("--- %s ---\n", workload);
    TablePrinter t({"(nW,nB)", "refresh", "rel IPC", "read ns", "row hit"});
    std::vector<sim::RunResult> baseline;
    for (const auto& [nW, nB] : {std::pair{1, 1}, std::pair{4, 4}}) {
      for (const bool perBank : {false, true}) {
        sim::SystemConfig cfg = sim::tsiBaselineConfig();
        cfg.ubank = dram::UbankConfig{nW, nB};
        cfg.perBankRefresh = perBank;
        const auto runs = bench::runWorkload(workload, cfg);
        if (baseline.empty()) baseline = runs;
        t.addRow({"(" + std::to_string(nW) + "," + std::to_string(nB) + ")",
                  perBank ? "per-bank" : "all-bank",
                  formatDouble(bench::relative(runs, baseline, bench::ipcMetric), 3),
                  formatDouble(
                      bench::meanOf(
                          runs, +[](const sim::RunResult& r) { return r.avgReadLatencyNs; }),
                      1),
                  formatDouble(
                      bench::meanOf(runs,
                                    +[](const sim::RunResult& r) { return r.rowHitRate; }),
                      3)});
      }
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "expected: per-bank refresh trims tail latency slightly everywhere;\n"
      "the effect is modest because refresh is ~4%% of time at this density.\n");
  return 0;
}
