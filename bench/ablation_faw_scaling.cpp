// Extension study: scaling the rank activation window with the μbank row
// size.
//
// tRRD/tFAW exist because row activation draws a large burst of current
// from the rank's charge pumps. A μbank row of 8KB/nW activates ~1/nW of
// the bits, so its current draw shrinks proportionally — the paper models
// the energy effect (Fig. 6b) but keeps the standard window; this ablation
// asks how much performance the conservative window costs on
// activation-rate-bound workloads.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace mb;
  bench::printBanner("Extension", "tRRD/tFAW scaling with ubank row size");

  for (const char* workload : {"429.mcf", "spec-high", "RADIX"}) {
    std::printf("--- %s ---\n", workload);
    TablePrinter t({"(nW,nB)", "act window", "rel IPC", "read ns"});
    std::vector<sim::RunResult> baseline;
    for (const auto& [nW, nB] : {std::pair{1, 1}, std::pair{4, 4}, std::pair{8, 2}}) {
      for (const bool scaled : {false, true}) {
        if (nW == 1 && scaled) continue;  // no row shrink, nothing to scale
        sim::SystemConfig cfg = sim::tsiBaselineConfig();
        cfg.ubank = dram::UbankConfig{nW, nB};
        cfg.scaleActWindowWithRowSize = scaled;
        const auto runs = bench::runWorkload(workload, cfg);
        if (baseline.empty()) baseline = runs;
        t.addRow({"(" + std::to_string(nW) + "," + std::to_string(nB) + ")",
                  scaled ? "scaled 1/nW" : "standard",
                  formatDouble(bench::relative(runs, baseline, bench::ipcMetric), 3),
                  formatDouble(
                      bench::meanOf(
                          runs, +[](const sim::RunResult& r) { return r.avgReadLatencyNs; }),
                      1)});
      }
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "expected: visible gains only where the activate rate is the binding\n"
      "constraint (conflict-heavy, low-locality streams at high nW).\n");
  return 0;
}
