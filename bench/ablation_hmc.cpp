// Extension study (paper §VII, left as future work there): HMC-style
// serial-link stacks vs TSI parallel interposer wires.
//
// The paper argues HMC "has a higher latency and static power and is not
// necessarily more energy-efficient for the system size being considered
// (e.g., single-socket system)". This bench quantifies that claim in this
// model: HMC pays ~16 ns of packetization/SerDes each way and an always-on
// link power, against LPDDR-TSI's bare interposer wires, with and without
// μbanks on both.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace mb;
  bench::printBanner("Extension", "HMC serial links vs TSI interposer wires");

  struct System {
    const char* label;
    interface::PhyKind phy;
    dram::UbankConfig ubank;
  };
  const System systems[] = {
      {"LPDDR-TSI (1,1)", interface::PhyKind::LpddrTsi, {1, 1}},
      {"HMC (1,1)", interface::PhyKind::Hmc, {1, 1}},
      {"LPDDR-TSI (8,2)", interface::PhyKind::LpddrTsi, {8, 2}},
      {"HMC (8,2)", interface::PhyKind::Hmc, {8, 2}},
  };

  for (const char* workload : {"429.mcf", "spec-high", "mix-high"}) {
    sim::SystemConfig baseCfg = sim::tsiBaselineConfig();
    const auto baseline = bench::runWorkload(workload, baseCfg);
    std::printf("--- %s (baseline LPDDR-TSI (1,1)) ---\n", workload);
    TablePrinter t({"system", "rel IPC", "rel 1/EDP", "read ns", "mem W"});
    for (const auto& s : systems) {
      sim::SystemConfig cfg = baseCfg;
      cfg.phy = s.phy;
      cfg.ubank = s.ubank;
      const auto runs = bench::runWorkload(workload, cfg);
      const auto p = bench::powerBreakdown(runs);
      t.addRow(s.label,
               {bench::relative(runs, baseline, bench::ipcMetric),
                bench::relative(runs, baseline, bench::invEdpMetric),
                bench::meanOf(runs,
                              +[](const sim::RunResult& r) { return r.avgReadLatencyNs; }),
                p.actPre + p.dramStatic + p.rdwr + p.io},
               3);
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "expected (paper's §VII claim): HMC trails TSI on latency-sensitive\n"
      "single-socket workloads and on energy (always-on links); ubanks help\n"
      "both, so the ordering persists.\n");
  return 0;
}
