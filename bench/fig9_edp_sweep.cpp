// Reproduces Fig. 9: relative 1/EDP (energy-delay product, higher is
// better) of 429.mcf, the spec-high average, and TPC-H over the (nW, nB)
// grid, normalized to the (1, 1) LPDDR-TSI baseline.
//
// Paper shape: 1/EDP gains exceed the IPC gains of Fig. 8 because nW also
// cuts activation energy; mcf reaches ~4.9x at (8,16); TPC-H ~3.6x at
// (16,8); the best-EDP corner always has nW >= 2.
//
// Grid points run in parallel via sim::SweepRunner (--jobs N / MB_JOBS;
// --jobs 1 reproduces the old serial walk with identical stdout).
//
// --warmup=N / MB_WARMUP=N warms caches with N trace records per core
// before measurement, capturing one MBCKPT1 warmup snapshot per workload
// and restoring it at every grid point (--warmup-cold re-simulates the
// warmup per point instead; same grids, more wall-clock).
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace mb;
  const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
  const int jobs = args.jobs;
  bench::printBanner("Figure 9", "relative 1/EDP over the (nW, nB) grid");

  const auto& axis = sim::sweepAxis();
  const sim::SystemConfig base = sim::tsiBaselineConfig();
  const std::vector<std::string> workloads = {"429.mcf", "spec-high", "TPC-H"};

  bench::SweepPlan plan;
  std::map<std::string, std::size_t> baselineCell;
  std::map<std::string, std::map<std::pair<int, int>, std::size_t>> gridCell;
  for (const auto& workload : workloads) {
    baselineCell[workload] = plan.add(workload, base);
    for (int nw : axis) {
      for (int nb : axis) {
        sim::SystemConfig cfg = base;
        cfg.ubank = dram::UbankConfig{nw, nb};
        gridCell[workload][{nw, nb}] = plan.add(workload, cfg);
      }
    }
  }
  if (args.warmup > 0) plan.enableWarmup(args.warmup, !args.warmupCold);
  plan.run(jobs);

  for (const auto& workload : workloads) {
    const auto& baseline = plan.results(baselineCell[workload]);
    GridPrinter grid(std::string("relative 1/EDP: ") + workload, axis, axis);
    for (int nw : axis) {
      for (int nb : axis) {
        const auto& runs = plan.results(gridCell[workload][{nw, nb}]);
        grid.set(nw, nb, bench::relative(runs, baseline, bench::invEdpMetric));
      }
    }
    grid.print(std::cout);
    std::cout << '\n';
  }
  std::printf(
      "paper anchors: mcf up to 4.85 at (8,16); spec-high ~2.3 around\n"
      "(2..4,8..16); TPC-H ~3.6 at (16,8). 1/EDP > IPC gains everywhere\n"
      "nW > 1 (activation energy shrinks with the row).\n");
  return 0;
}
