// Reproduces Fig. 13: relative IPC and predictor hit rate of the
// page-management schemes — Close (C), Open (O), Local bimodal (L),
// Tournament (T), and Perfect oracle (P) — on 471.omnetpp, 429.mcf, the
// spec-high average, canneal, RADIX, mix-high, and mix-blend, at
// (nW, nB) = (1, 1), (2, 8), (4, 4). Normalized per workload to the
// open-page policy at the same μbank configuration (the paper's bars are
// comparable within each group).
//
// Also prints the §V supporting data: the request-queue occupancy collapse
// that starves queue-inspecting policies, the prediction-based gain on the
// conventional (1,1) system (paper: up to 20.5%), and the tournament-vs-open
// gap with μbanks (paper: 3.9% average, 11.2% max).
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace mb;
  bench::printBanner("Figure 13", "page-management schemes: C / O / L / T / P");

  const sim::SystemConfig base = sim::tsiBaselineConfig();
  const std::vector<std::pair<int, int>> configs = {{1, 1}, {2, 8}, {4, 4}};
  const std::vector<std::string> workloads = {"471.omnetpp", "429.mcf", "spec-high",
                                              "canneal",     "RADIX",   "mix-high",
                                              "mix-blend"};
  struct Scheme {
    const char* tag;
    core::PolicyKind kind;
  };
  const Scheme schemes[] = {{"C", core::PolicyKind::Close},
                            {"O", core::PolicyKind::Open},
                            {"L", core::PolicyKind::LocalBimodal},
                            {"T", core::PolicyKind::Tournament},
                            {"P", core::PolicyKind::Perfect}};

  double tournamentOverOpenSum = 0.0;
  double tournamentOverOpenMax = 0.0;
  int tournamentSamples = 0;
  double conventionalBestGain = 0.0;

  for (const auto& [nW, nB] : configs) {
    std::printf("--- (nW,nB) = (%d,%d) ---\n", nW, nB);
    TablePrinter t({"workload", "C ipc", "O ipc", "L ipc", "T ipc", "P ipc", "C hit",
                    "O hit", "L hit", "T hit", "queue occ"});
    for (const auto& workload : workloads) {
      sim::SystemConfig openCfg = base;
      openCfg.ubank = dram::UbankConfig{nW, nB};
      openCfg.pagePolicy = core::PolicyKind::Open;
      const auto openRuns = bench::runWorkload(workload, openCfg);

      std::vector<std::string> row{workload};
      std::vector<double> ipcRel(5, 0.0);
      std::vector<double> hitRate(5, 0.0);
      for (size_t s = 0; s < 5; ++s) {
        sim::SystemConfig cfg = openCfg;
        cfg.pagePolicy = schemes[s].kind;
        const auto runs = schemes[s].kind == core::PolicyKind::Open
                              ? openRuns
                              : bench::runWorkload(workload, cfg);
        ipcRel[s] = bench::relative(runs, openRuns, bench::ipcMetric);
        hitRate[s] = bench::meanOf(
            runs, +[](const sim::RunResult& r) { return r.predictorHitRate; });
        if (schemes[s].kind == core::PolicyKind::Tournament) {
          const double gain = ipcRel[s] - 1.0;
          tournamentOverOpenSum += gain;
          tournamentOverOpenMax = std::max(tournamentOverOpenMax, gain);
          ++tournamentSamples;
          if (nW == 1 && nB == 1) {
            conventionalBestGain = std::max(conventionalBestGain, gain);
          }
        }
      }
      for (size_t s = 0; s < 5; ++s) row.push_back(formatDouble(ipcRel[s], 3));
      for (size_t s = 0; s < 4; ++s) row.push_back(formatDouble(hitRate[s], 3));
      row.push_back(formatDouble(
          bench::meanOf(openRuns,
                        +[](const sim::RunResult& r) { return r.avgQueueOccupancy; }),
          2));
      t.addRow(std::move(row));
    }
    t.print(std::cout);
    std::printf("\n");
  }

  std::printf(
      "summary: tournament-over-open average %.1f%% (paper: 3.9%% with ubanks),\n"
      "max %.1f%%; best prediction gain on the conventional (1,1) system %.1f%%\n"
      "(paper: up to 20.5%%). P column is the oracle upper bound (hit rate 1).\n",
      100.0 * tournamentOverOpenSum / tournamentSamples, 100.0 * tournamentOverOpenMax,
      100.0 * conventionalBestGain);
  return 0;
}
