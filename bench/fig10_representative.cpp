// Reproduces Fig. 10: relative IPC, relative 1/EDP, and the system power
// breakdown for the representative μbank configurations with < 3% die-area
// overhead — (1,1), (2,8), (4,4), (8,2) — on single-threaded applications
// (429.mcf, 450.soplex, spec-high, spec-all) and 64-core workloads
// (mix-high, mix-blend, RADIX, FFT).
//
// Paper shape: memory-intensive workloads gain the most; configurations
// with more wordline partitions dissipate the least ACT/PRE power; RADIX
// gains ~49% IPC at (8,2).
//
// All (workload, config) runs execute in parallel via sim::SweepRunner
// (--jobs N / MB_JOBS; --jobs 1 is the old serial walk, same stdout).
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "dram/area_model.hpp"

int main(int argc, char** argv) {
  using namespace mb;
  const int jobs = bench::jobsFromArgs(argc, argv);
  bench::printBanner("Figure 10",
                     "representative <3%-area ubank configs: IPC, 1/EDP, power");

  const sim::SystemConfig base = sim::tsiBaselineConfig();
  const auto configs = sim::representativeConfigs();
  dram::AreaModel area;
  for (const auto& c : configs) {
    std::printf("config %s: area overhead %.1f%%\n", c.label.c_str(),
                area.overhead({c.nW, c.nB}) * 100.0);
  }
  std::printf("\n");

  const std::vector<std::string> workloads = {"429.mcf",  "450.soplex", "spec-high",
                                              "spec-all", "mix-high",   "mix-blend",
                                              "RADIX",    "FFT"};
  bench::SweepPlan plan;
  std::map<std::string, std::size_t> baselineCell;
  std::map<std::string, std::map<std::string, std::size_t>> configCell;
  for (const auto& workload : workloads) {
    baselineCell[workload] = plan.add(workload, base);
    for (const auto& c : configs) {
      sim::SystemConfig cfg = base;
      cfg.ubank = dram::UbankConfig{c.nW, c.nB};
      configCell[workload][c.label] = plan.add(workload, cfg);
    }
  }
  plan.run(jobs);

  for (const auto& workload : workloads) {
    const auto& baseline = plan.results(baselineCell[workload]);
    TablePrinter t({"(nW,nB)", "rel IPC", "rel 1/EDP", "Proc W", "ACT/PRE W",
                    "DRAM static W", "RD/WR W", "I/O W"});
    for (const auto& c : configs) {
      const auto& runs = plan.results(configCell[workload][c.label]);
      const auto p = bench::powerBreakdown(runs);
      t.addRow(c.label,
               {bench::relative(runs, baseline, bench::ipcMetric),
                bench::relative(runs, baseline, bench::invEdpMetric), p.processor,
                p.actPre, p.dramStatic, p.rdwr, p.io},
               3);
    }
    std::printf("--- %s ---\n", workload.c_str());
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "paper anchors: higher nW -> lower ACT/PRE power; RADIX +48.9%% IPC at\n"
      "(8,2); gains track MAPKI.\n");
  return 0;
}
