// Reproduces Fig. 1: energy breakdown (pJ per transferred bit) of the
// conventional PCB-based, TSI-based, and proposed μbank-based memory
// systems, measured from full-system simulation of a memory-intensive
// workload (spec-high group).
//
// Paper shape: PCB ≈ 110 pJ/b dominated by I/O + ACT/PRE; TSI cuts I/O and
// RD/WR, leaving ACT/PRE ("core DRAM") dominant — the unbalance that
// motivates μbank; TSI+μbank then cuts the ACT/PRE term itself.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace mb;
  bench::printBanner("Figure 1",
                     "energy per transferred bit: PCB vs TSI vs TSI+ubank");

  struct System {
    const char* label;
    sim::SystemConfig cfg;
  };
  sim::SystemConfig pcb = sim::ddr3PcbConfig();
  sim::SystemConfig tsi = sim::tsiBaselineConfig();
  sim::SystemConfig ubank = tsi;
  ubank.ubank = dram::UbankConfig{8, 2};  // <3% area representative config

  TablePrinter t({"system", "Core (static+refresh)", "ACT/PRE", "RD/WR", "I/O",
                  "total pJ/b"});
  for (const System& s : {System{"PCB (baseline)", pcb}, System{"TSI", tsi},
                          System{"TSI+ubank(8,2)", ubank}}) {
    const auto runs = bench::runWorkload("spec-high", s.cfg);
    double bits = 0, actPre = 0, rdwr = 0, io = 0, core = 0;
    for (const auto& r : runs) {
      bits += static_cast<double>(r.dramReads + r.dramWrites) * 64 * 8;
      actPre += r.energy.dramActPre;
      rdwr += r.energy.dramRdWr;
      io += r.energy.io;
      core += r.energy.dramStatic;
    }
    t.addRow(s.label,
             {core / bits, actPre / bits, rdwr / bits, io / bits,
              (core + actPre + rdwr + io) / bits},
             1);
  }
  t.print(std::cout);
  std::printf(
      "\nexpected shape (paper): TSI removes most I/O and RD/WR energy but\n"
      "leaves ACT/PRE dominant; the ubank organization then attacks ACT/PRE\n"
      "itself, balancing the design.\n");
  return 0;
}
