// google-benchmark microbenchmarks for the simulator's hot paths: address
// decomposition, cache lookup, scheduler candidate selection, DRAM command
// commit, trace generation, and a full small simulation as the end-to-end
// cost yardstick.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/event_queue.hpp"
#include "common/rng.hpp"
#include "core/address_map.hpp"
#include "cpu/cache.hpp"
#include "mc/controller.hpp"
#include "mc/scheduler.hpp"
#include "sim/experiment.hpp"
#include "trace/generator.hpp"

namespace {

using namespace mb;

dram::Geometry benchGeometry() {
  dram::Geometry g;
  g.channels = 16;
  g.ranksPerChannel = 8;
  g.banksPerRank = 8;
  g.ubank = {2, 8};
  return g;
}

void BM_AddressDecompose(benchmark::State& state) {
  const auto g = benchGeometry();
  const auto map = core::AddressMap::pageInterleaved(g);
  Rng rng(1);
  std::vector<std::uint64_t> addrs(1024);
  for (auto& a : addrs) a = rng.nextU64() & ((1ull << 40) - 64);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.decompose(addrs[i++ & 1023]));
  }
}
BENCHMARK(BM_AddressDecompose);

void BM_AddressRoundTrip(benchmark::State& state) {
  const auto g = benchGeometry();
  const auto map = core::AddressMap::pageInterleaved(g);
  std::uint64_t a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.compose(map.decompose(a)));
    a += 4096;
  }
}
BENCHMARK(BM_AddressRoundTrip);

void BM_CacheLookupHit(benchmark::State& state) {
  cpu::Cache cache(2 * kMiB, 16);
  for (std::uint64_t i = 0; i < 1024; ++i)
    cache.insert(i * 64, cpu::LineState::Shared);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup((i++ & 1023) * 64));
  }
}
BENCHMARK(BM_CacheLookupHit);

void BM_CacheInsertEvict(benchmark::State& state) {
  cpu::Cache cache(16 * kKiB, 4);
  std::uint64_t a = 0;
  for (auto _ : state) {
    if (cache.peek(a) == nullptr) {
      benchmark::DoNotOptimize(cache.insert(a, cpu::LineState::Modified));
    }
    a += 64 * 64;  // new set walk, forces evictions
  }
}
BENCHMARK(BM_CacheInsertEvict);

std::vector<mc::Candidate> makeCandidates(mc::Scheduler& sched, std::size_t n) {
  Rng rng(3);
  std::vector<mc::Candidate> cands(n);
  for (size_t i = 0; i < cands.size(); ++i) {
    auto& c = cands[i];
    c.queueIndex = static_cast<int>(i);
    c.id = i + 1;
    c.thread = static_cast<ThreadId>(rng.nextBounded(8));
    c.arrival = static_cast<Tick>(rng.nextBounded(100000));
    c.earliestIssue = rng.nextBool(0.7) ? 0 : 1000000;
    c.rowHit = rng.nextBool(0.4);
    mc::MemRequest req;
    req.id = c.id;
    req.thread = c.thread;
    req.arrival = c.arrival;
    sched.onEnqueue(req);
  }
  return cands;
}

void BM_SchedulerPick(benchmark::State& state) {
  auto sched = mc::makeScheduler(
      static_cast<mc::SchedulerKind>(state.range(0)));
  auto cands = makeCandidates(*sched, static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched->pick(cands, 500000));
  }
}
// Args: {scheduler kind (FCFS, FR-FCFS, PAR-BS), candidate count}. The large
// counts model deep per-channel queues where the scan dominates kick().
BENCHMARK(BM_SchedulerPick)
    ->Args({0, 32})->Args({1, 32})->Args({2, 32})
    ->Args({0, 64})->Args({1, 64})->Args({2, 64})
    ->Args({0, 256})->Args({1, 256})->Args({2, 256});

void BM_SchedulerPickPair(benchmark::State& state) {
  // The fused single-scan used by MemoryController::kick(): one pass yields
  // both the issuable-now best and the overall best for the priority gate.
  // Compare against 2x BM_SchedulerPick at the same count; the win grows
  // with comparator cost, so PAR-BS (the shipped default) benefits most.
  auto sched = mc::makeScheduler(
      static_cast<mc::SchedulerKind>(state.range(0)));
  auto cands = makeCandidates(*sched, static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    const auto pp = sched->pickPair(cands, 500000);
    benchmark::DoNotOptimize(pp.issuable);
    benchmark::DoNotOptimize(pp.overall);
  }
}
BENCHMARK(BM_SchedulerPickPair)
    ->Args({0, 32})->Args({1, 32})->Args({2, 32})
    ->Args({0, 64})->Args({1, 64})->Args({2, 64})
    ->Args({0, 256})->Args({1, 256})->Args({2, 256});

void BM_DramCommandCycle(benchmark::State& state) {
  const auto g = benchGeometry();
  mc::ChannelState ch(g, dram::TimingParams::tsi());
  ch.refreshEnabled = false;
  core::DramAddress da;
  Tick t = 0;
  std::int64_t row = 0;
  for (auto _ : state) {
    da.row = ++row;
    t = ch.earliestAct(da, t);
    ch.commitAct(da, t);
    const Tick cas = ch.earliestCas(da, false, t);
    ch.commitCas(da, false, cas);
    const Tick pre = ch.earliestPre(da, cas);
    ch.commitPre(da, pre);
    t = pre;
  }
}
BENCHMARK(BM_DramCommandCycle);

void BM_TraceGeneration(benchmark::State& state) {
  trace::SyntheticParams p = trace::specProfile("429.mcf").params;
  trace::SyntheticSource src(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(src.next());
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_EndToEndSmallRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::SystemConfig cfg = sim::tsiBaselineConfig();
    cfg.core.maxInstrs = 20000;
    const auto r = sim::runSimulation(cfg, sim::WorkloadSpec::spec("450.soplex"));
    benchmark::DoNotOptimize(r.systemIpc);
  }
}
BENCHMARK(BM_EndToEndSmallRun)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
