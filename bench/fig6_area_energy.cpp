// Reproduces Fig. 6: (a) relative DRAM die area and (b) relative energy per
// read over the (nW, nB) partitioning grid.
//
// (a) comes from the calibrated component area model (corners pinned to the
// paper's published values); (b) from the analytic energy-per-read model at
// the two ACT:CAS ratios the paper plots (beta = 1.0 and 0.1).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "dram/area_model.hpp"
#include "dram/energy.hpp"

int main(int argc, char** argv) {
  using namespace mb;
  // Both grids are closed-form (no simulation), so --jobs only exists for
  // CLI uniformity with the other grid benches; the work is instant.
  (void)bench::jobsFromArgs(argc, argv);
  bench::printBanner("Figure 6", "ubank area and energy overhead grids");

  const auto& axis = sim::sweepAxis();
  dram::AreaModel area;

  GridPrinter areaGrid("(a) relative DRAM die area", axis, axis);
  for (int nw : axis)
    for (int nb : axis) areaGrid.set(nw, nb, area.relativeArea({nw, nb}));
  areaGrid.print(std::cout);

  const auto params = dram::EnergyParams::lpddrTsi();
  for (double beta : {1.0, 0.1}) {
    dram::Geometry g;
    g.ubank = {1, 1};
    const double base = dram::energyPerRead(params, g, beta);
    GridPrinter energyGrid(
        "(b) relative energy per read, beta=" + formatDouble(beta, 1), axis, axis);
    for (int nw : axis) {
      for (int nb : axis) {
        g.ubank = {nw, nb};
        energyGrid.set(nw, nb, dram::energyPerRead(params, g, beta) / base);
      }
    }
    std::cout << '\n';
    energyGrid.print(std::cout);
  }
  std::cout << "\npaper anchors: area 1.268 at (16,16), 1.031 at (16,1), 1.014 at\n"
               "(1,16); <5% overhead for nW*nB < 64. Energy falls with nW (smaller\n"
               "activated row), is insensitive to nB, and is steeper at beta=1.\n";
  return 0;
}
