// Reproduces Fig. 8: relative IPC of (a) 429.mcf, (b) the spec-high average,
// and (c) TPC-H over the full (nW, nB) ∈ {1,2,4,8,16}² grid, normalized to
// the unpartitioned (1, 1) LPDDR-TSI baseline.
//
// Paper shape: mcf gains from both axes (1.55x at (16,16)); spec-high gains
// are modest (~1.2x); TPC-H jumps sharply with nB and saturates, with weak
// nW sensitivity; diminishing returns everywhere.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace mb;
  bench::printBanner("Figure 8", "relative IPC over the (nW, nB) grid");

  const auto& axis = sim::sweepAxis();
  const sim::SystemConfig base = sim::tsiBaselineConfig();

  for (const char* workload : {"429.mcf", "spec-high", "TPC-H"}) {
    const auto baseline = bench::runWorkload(workload, base);
    GridPrinter grid(std::string("relative IPC: ") + workload, axis, axis);
    for (int nw : axis) {
      for (int nb : axis) {
        sim::SystemConfig cfg = base;
        cfg.ubank = dram::UbankConfig{nw, nb};
        const auto runs = bench::runWorkload(workload, cfg);
        grid.set(nw, nb, bench::relative(runs, baseline, bench::ipcMetric));
      }
    }
    grid.print(std::cout);
    std::cout << '\n';
  }
  std::printf(
      "paper anchors: mcf 1.548 at (16,16); spec-high ~1.21 peak; TPC-H\n"
      "1.44+ from nB>=2 with best at (16,8).\n");
  return 0;
}
