// Reproduces Fig. 8: relative IPC of (a) 429.mcf, (b) the spec-high average,
// and (c) TPC-H over the full (nW, nB) ∈ {1,2,4,8,16}² grid, normalized to
// the unpartitioned (1, 1) LPDDR-TSI baseline.
//
// Paper shape: mcf gains from both axes (1.55x at (16,16)); spec-high gains
// are modest (~1.2x); TPC-H jumps sharply with nB and saturates, with weak
// nW sensitivity; diminishing returns everywhere.
//
// All grid points are independent simulations and run in parallel through
// sim::SweepRunner: --jobs N / MB_JOBS bounds the pool (default: hardware
// concurrency; 1 is the old serial walk; stdout is identical either way).
//
// --warmup=N (or MB_WARMUP=N) warms each point's caches with N functional
// trace records per core before measurement. The warmup state depends only
// on the workload and the processor shape — not on (nW, nB) or any other
// memory knob — so it runs once per workload and every grid point restores
// the shared MBCKPT1 snapshot (--warmup-cold replays it per point instead;
// the grids are bit-identical, only wall-clock differs).
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace mb;
  const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
  const int jobs = args.jobs;
  bench::printBanner("Figure 8", "relative IPC over the (nW, nB) grid");

  const auto& axis = sim::sweepAxis();
  const sim::SystemConfig base = sim::tsiBaselineConfig();
  const std::vector<std::string> workloads = {"429.mcf", "spec-high", "TPC-H"};

  // One flat plan for every workload's baseline and grid cells: the sweep
  // pool stays saturated across workload boundaries.
  bench::SweepPlan plan;
  std::map<std::string, std::size_t> baselineCell;
  std::map<std::string, std::map<std::pair<int, int>, std::size_t>> gridCell;
  for (const auto& workload : workloads) {
    baselineCell[workload] = plan.add(workload, base);
    for (int nw : axis) {
      for (int nb : axis) {
        sim::SystemConfig cfg = base;
        cfg.ubank = dram::UbankConfig{nw, nb};
        gridCell[workload][{nw, nb}] = plan.add(workload, cfg);
      }
    }
  }
  if (args.warmup > 0) plan.enableWarmup(args.warmup, !args.warmupCold);
  plan.run(jobs);

  for (const auto& workload : workloads) {
    const auto& baseline = plan.results(baselineCell[workload]);
    GridPrinter grid(std::string("relative IPC: ") + workload, axis, axis);
    for (int nw : axis) {
      for (int nb : axis) {
        const auto& runs = plan.results(gridCell[workload][{nw, nb}]);
        grid.set(nw, nb, bench::relative(runs, baseline, bench::ipcMetric));
      }
    }
    grid.print(std::cout);
    std::cout << '\n';
  }
  std::printf(
      "paper anchors: mcf 1.548 at (16,16); spec-high ~1.21 peak; TPC-H\n"
      "1.44+ from nB>=2 with best at (16,8).\n");
  return 0;
}
