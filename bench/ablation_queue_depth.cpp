// Ablation: request-queue (scheduler window) depth sensitivity.
//
// §V's argument is that μbank systems starve the request queue of pending
// requests per bank, so policies that inspect the queue lose their
// information advantage. This ablation varies the scheduler-visible window
// and reports IPC and the measured average queue occupancy at (1,1) and
// (2,8): the occupancy collapse with μbanks is the §V evidence.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace mb;
  bench::printBanner("Ablation", "request-queue depth and occupancy (the §V argument)");

  for (const auto& [nW, nB] : {std::pair{1, 1}, std::pair{2, 8}}) {
    std::printf("--- (nW,nB) = (%d,%d), workload 429.mcf ---\n", nW, nB);
    TablePrinter t({"queue depth", "IPC", "avg occupancy", "avg read latency ns"});
    for (int depth : {4, 8, 16, 32, 64}) {
      sim::SystemConfig cfg = sim::tsiBaselineConfig();
      cfg.ubank = dram::UbankConfig{nW, nB};
      cfg.queueDepth = depth;
      const auto runs = bench::runWorkload("429.mcf", cfg);
      t.addRow(std::to_string(depth),
               {bench::meanOf(runs, +[](const sim::RunResult& r) { return r.systemIpc; }),
                bench::meanOf(runs,
                              +[](const sim::RunResult& r) { return r.avgQueueOccupancy; }),
                bench::meanOf(
                    runs, +[](const sim::RunResult& r) { return r.avgReadLatencyNs; })},
               3);
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "expected: occupancy (and thus queue-inspection information) collapses\n"
      "with ubanks; deep windows stop paying off beyond a small depth.\n");
  return 0;
}
