// Reproduces Fig. 14: IPC, power breakdown, and relative 1/EDP of the three
// processor-memory interfaces without μbanks — DDR3-PCB (8 pin-limited
// channels), DDR3-TSI (16 channels, DDR3 PHY, 8-die ranks), and LPDDR-TSI
// (16 channels, 4 pJ/b, every die its own rank) — on mix-high, mix-blend,
// canneal, FFT, RADIX, and the spec-high average.
//
// Paper anchors (mix-high): DDR3-TSI +52.5% IPC and LPDDR-TSI +104.3% over
// DDR3-PCB; EDP -37.8% / -73.7%; for LPDDR-TSI the ACT/PRE share of memory
// power rises to ~76%, which motivates μbank.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace mb;
  bench::printBanner("Figure 14", "DDR3-PCB vs DDR3-TSI vs LPDDR-TSI (no ubanks)");

  const std::vector<std::string> workloads = {"mix-high", "mix-blend", "canneal",
                                              "FFT",      "RADIX",     "spec-high"};
  const interface::PhyKind phys[] = {interface::PhyKind::Ddr3Pcb,
                                     interface::PhyKind::Ddr3Tsi,
                                     interface::PhyKind::LpddrTsi};

  for (const auto& workload : workloads) {
    sim::SystemConfig pcbCfg = sim::tsiBaselineConfig();
    pcbCfg.phy = interface::PhyKind::Ddr3Pcb;
    const auto baseline = bench::runWorkload(workload, pcbCfg);

    std::printf("--- %s ---\n", workload.c_str());
    TablePrinter t({"interface", "rel IPC", "rel 1/EDP", "Proc W", "ACT/PRE W",
                    "DRAM static W", "RD/WR W", "I/O W", "ACT/PRE share of mem"});
    for (auto phy : phys) {
      sim::SystemConfig cfg = sim::tsiBaselineConfig();
      cfg.phy = phy;
      const auto runs = phy == interface::PhyKind::Ddr3Pcb
                            ? baseline
                            : bench::runWorkload(workload, cfg);
      const auto p = bench::powerBreakdown(runs);
      const double memW = p.actPre + p.dramStatic + p.rdwr + p.io;
      t.addRow(interface::phyKindName(phy),
               {bench::relative(runs, baseline, bench::ipcMetric),
                bench::relative(runs, baseline, bench::invEdpMetric), p.processor,
                p.actPre, p.dramStatic, p.rdwr, p.io,
                memW > 0 ? p.actPre / memW : 0.0},
               3);
    }
    t.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
