// Ablation: memory-access scheduler (FCFS vs FR-FCFS vs PAR-BS) across
// μbank configurations.
//
// DESIGN.md calls this out: the paper uses PAR-BS as its default (§VI-A) and
// argues the scheduler's queue-inspection loses value as μbanks shrink
// per-bank queue depth. This ablation quantifies how much scheduling still
// matters at each partitioning level, on a latency-bound single-threaded
// app, the spec-high mean, and a 64-thread kernel.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace mb;
  bench::printBanner("Ablation", "scheduler (FCFS / FR-FCFS / PAR-BS) x ubank config");

  const std::vector<std::pair<int, int>> configs = {{1, 1}, {2, 8}, {8, 2}};
  const mc::SchedulerKind kinds[] = {mc::SchedulerKind::Fcfs, mc::SchedulerKind::FrFcfs,
                                     mc::SchedulerKind::ParBs};

  for (const char* workload : {"429.mcf", "spec-high", "TPC-H"}) {
    std::printf("--- %s (baseline: FCFS at same config) ---\n", workload);
    TablePrinter t({"(nW,nB)", "FCFS", "FR-FCFS", "PAR-BS"});
    for (const auto& [nW, nB] : configs) {
      std::vector<double> rel;
      std::vector<sim::RunResult> fcfsRuns;
      for (auto kind : kinds) {
        sim::SystemConfig cfg = sim::tsiBaselineConfig();
        cfg.ubank = dram::UbankConfig{nW, nB};
        cfg.scheduler = kind;
        auto runs = bench::runWorkload(workload, cfg);
        if (kind == mc::SchedulerKind::Fcfs) fcfsRuns = runs;
        rel.push_back(bench::relative(runs, fcfsRuns, bench::ipcMetric));
      }
      t.addRow("(" + std::to_string(nW) + "," + std::to_string(nB) + ")", rel, 3);
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "expected: row-hit-first scheduling (FR-FCFS/PAR-BS) helps most at\n"
      "(1,1); the advantage shrinks as ubanks remove bank conflicts.\n");
  return 0;
}
