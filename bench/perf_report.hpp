// JSON/baseline emission and RSS sampling for mbperf, extracted from the
// harness binary so tests can pin the writer: a long preset name must never
// truncate into invalid JSON (MBPERF1 consumers parse the record), and the
// baseline's preset list must track the shipped preset table.
//
// RSS semantics: `ru_maxrss` is a process-lifetime HIGH-WATER mark, so the
// absolute value sampled after preset N includes every earlier preset's
// footprint. The harness therefore reports per-preset DELTAS — the growth of
// the high-water mark attributable to that preset's runs (0 when it fits
// inside an earlier peak) — under the existing `peakRssKiB` key; only the
// `totals` block carries the process-wide peak.
#pragma once

#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <istream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace mb::bench {

struct PresetPerf {
  std::string preset;
  double wallSeconds = 0.0;
  std::uint64_t events = 0;
  double eventsPerSec = 0.0;
  double simulatedCyclesPerSec = 0.0;
  long peakRssKiB = 0;  // delta of the process high-water mark (see header)
};

struct ReportMeta {
  std::string workload;
  std::int64_t instrs = 0;
  int repeat = 0;
};

/// Serve-path metrics (mbperf --serve): how much the mbserve memo cache and
/// warmup-snapshot LRU actually buy on this host. `coldSeconds` is the full
/// simulate + serialize + store path for one point; `cachedSeconds` is the
/// memo lookup returning the identical bytes. Best-of timings like the
/// preset table.
struct ServePerf {
  double coldSeconds = 0.0;
  double cachedSeconds = 0.0;
  std::int64_t lruHits = 0;
  std::int64_t lruMisses = 0;
};

/// Sharded-engine metrics (mbperf --shard-bench): wall clock of the SAME
/// simulation at --shards=1 vs --shards=N (DESIGN.md §14). The outputs are
/// byte-identical by construction, so `events` is a single number and the
/// ratio is pure engine overhead/speedup. `hardwareThreads` records
/// std::thread::hardware_concurrency() — without it the ratio is
/// uninterpretable: a 1-core CI box CANNOT show a speedup (the workers and
/// the main thread time-slice one CPU and the barrier crossings are pure
/// overhead), which is a property of the host, not a regression.
struct ShardPerf {
  int shards = 0;
  int channels = 0;
  unsigned hardwareThreads = 0;
  double serialSeconds = 0.0;
  double shardedSeconds = 0.0;
  std::uint64_t events = 0;
};

/// Process peak RSS in KiB. ru_maxrss is reported in KiB on Linux but in
/// BYTES on macOS; every consumer goes through this helper so the unit quirk
/// lives in exactly one place.
inline long currentPeakRssKiB() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return ru.ru_maxrss / 1024;
#else
  return ru.ru_maxrss;
#endif
}

inline std::string jsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// %.6g rendering of a double. A 64-byte buffer cannot truncate this format;
/// the old whole-record snprintf used a 256-byte line buffer and ignored the
/// return value, so a long preset name silently dropped the record's tail —
/// including the closing braces — and produced unparseable JSON.
inline std::string fmtG(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// The MBPERF1 record. Built with unbounded string appends — no fixed-size
/// line buffer anywhere — so arbitrarily long preset names stay valid JSON.
/// `serve` (optional) adds a "serve" block with the memo-cache cold/cached
/// latencies, the derived speedup, and the snapshot-LRU hit rate. `shard`
/// (optional) adds a "shard" block with the serial vs sharded wall clock,
/// both events/sec figures, the derived speedup, and the host's hardware
/// thread count for context.
inline std::string perfJson(const std::vector<PresetPerf>& perfs,
                            const ReportMeta& meta, long totalPeakRssKiB,
                            const ServePerf* serve = nullptr,
                            const ShardPerf* shard = nullptr) {
  double totalWall = 0.0;
  std::uint64_t totalEvents = 0;
  for (const auto& p : perfs) {
    totalWall += p.wallSeconds;
    totalEvents += p.events;
  }
  std::ostringstream out;
  out << "{\"format\":\"MBPERF1\",\"workload\":\"" << jsonEscape(meta.workload)
      << "\",\"instrs\":" << meta.instrs << ",\"repeat\":" << meta.repeat
      << ",\"presets\":[";
  for (std::size_t i = 0; i < perfs.size(); ++i) {
    const auto& p = perfs[i];
    if (i != 0) out << ',';
    out << "{\"preset\":\"" << jsonEscape(p.preset)
        << "\",\"wallSeconds\":" << fmtG(p.wallSeconds)
        << ",\"events\":" << p.events
        << ",\"eventsPerSec\":" << fmtG(p.eventsPerSec)
        << ",\"simulatedCyclesPerSec\":" << fmtG(p.simulatedCyclesPerSec)
        << ",\"peakRssKiB\":" << p.peakRssKiB << '}';
  }
  out << ']';
  if (serve != nullptr) {
    const std::int64_t lruTotal = serve->lruHits + serve->lruMisses;
    out << ",\"serve\":{\"coldSeconds\":" << fmtG(serve->coldSeconds)
        << ",\"cachedSeconds\":" << fmtG(serve->cachedSeconds)
        << ",\"speedup\":"
        << fmtG(serve->cachedSeconds > 0.0
                    ? serve->coldSeconds / serve->cachedSeconds
                    : 0.0)
        << ",\"lruHits\":" << serve->lruHits
        << ",\"lruMisses\":" << serve->lruMisses << ",\"lruHitRate\":"
        << fmtG(lruTotal > 0 ? static_cast<double>(serve->lruHits) /
                                   static_cast<double>(lruTotal)
                             : 0.0)
        << '}';
  }
  if (shard != nullptr) {
    out << ",\"shard\":{\"shards\":" << shard->shards
        << ",\"channels\":" << shard->channels
        << ",\"hardwareThreads\":" << shard->hardwareThreads
        << ",\"serialSeconds\":" << fmtG(shard->serialSeconds)
        << ",\"shardedSeconds\":" << fmtG(shard->shardedSeconds)
        << ",\"speedup\":"
        << fmtG(shard->shardedSeconds > 0.0
                    ? shard->serialSeconds / shard->shardedSeconds
                    : 0.0)
        << ",\"events\":" << shard->events << ",\"serialEventsPerSec\":"
        << fmtG(shard->serialSeconds > 0.0
                    ? static_cast<double>(shard->events) / shard->serialSeconds
                    : 0.0)
        << ",\"shardedEventsPerSec\":"
        << fmtG(shard->shardedSeconds > 0.0
                    ? static_cast<double>(shard->events) / shard->shardedSeconds
                    : 0.0)
        << '}';
  }
  out << ",\"totals\":{\"wallSeconds\":" << fmtG(totalWall)
      << ",\"events\":" << totalEvents << ",\"eventsPerSec\":"
      << fmtG(totalWall > 0.0 ? static_cast<double>(totalEvents) / totalWall
                              : 0.0)
      << ",\"peakRssKiB\":" << totalPeakRssKiB << "}}\n";
  return out.str();
}

/// Parse a perf_baseline.txt stream: `name events/sec` lines, '#' comments.
inline std::map<std::string, double> readBaseline(std::istream& in) {
  std::map<std::string, double> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string name;
    double eps = 0.0;
    if (ls >> name >> eps) out[name] = eps;
  }
  return out;
}

}  // namespace mb::bench
