// Shared helpers for the figure/table reproduction binaries.
//
// Every bench prints: a header naming the paper artifact it regenerates, the
// system configuration used, and the table/series in the paper's layout.
// Slices default to the "fast" preset (whole bench suite in minutes); set
// MB_SLICE=full for longer, tighter-statistics runs.
#pragma once

#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/system.hpp"

namespace mb::bench {

/// Print the standard bench banner.
void printBanner(const std::string& artifact, const std::string& what);

/// 64-core, 16-channel configuration for multiprogrammed / multithreaded
/// workloads (paper §VI-A); honors the PHY's channel limit.
sim::SystemConfig multicoreConfig(sim::SystemConfig base);

/// Apply the slice preset from MB_SLICE to single- or multi-core configs.
sim::SystemConfig sliced(sim::SystemConfig cfg, bool multicore);

/// Run a named workload:
///   - a SPEC app name ("429.mcf"): single core, single channel;
///   - "spec-high"/"spec-med"/"spec-low"/"spec-all": per-app runs, averaged
///     as ratios by the caller (returns all apps' results);
///   - "mix-high"/"mix-blend": 64-core multiprogrammed;
///   - "RADIX"/"FFT"/"canneal"/"TPC-C"/"TPC-H": 64-thread kernels.
/// Returns one result per constituent run.
std::vector<sim::RunResult> runWorkload(const std::string& name,
                                        const sim::SystemConfig& cfg);

/// Mean metric ratio of `test` over `baseline` (paired per constituent).
double relative(const std::vector<sim::RunResult>& test,
                const std::vector<sim::RunResult>& baseline,
                double (*metric)(const sim::RunResult&));

inline double ipcMetric(const sim::RunResult& r) { return r.systemIpc; }
inline double invEdpMetric(const sim::RunResult& r) { return r.invEdp; }

/// Aggregate power breakdown (watts) over a workload's runs.
struct PowerBreakdownW {
  double processor = 0, actPre = 0, dramStatic = 0, rdwr = 0, io = 0;
  double total() const { return processor + actPre + dramStatic + rdwr + io; }
};
PowerBreakdownW powerBreakdown(const std::vector<sim::RunResult>& runs);

/// Mean of a scalar across runs.
double meanOf(const std::vector<sim::RunResult>& runs,
              double (*metric)(const sim::RunResult&));

}  // namespace mb::bench
