// Shared helpers for the figure/table reproduction binaries.
//
// Every bench prints: a header naming the paper artifact it regenerates, the
// system configuration used, and the table/series in the paper's layout.
// Slices default to the "fast" preset (whole bench suite in minutes); set
// MB_SLICE=full for longer, tighter-statistics runs.
//
// Grid benches run their simulation points through sim::SweepRunner: pass
// --jobs N (or set MB_JOBS) to bound the worker pool; the default is the
// hardware concurrency and --jobs 1 reproduces the old serial walk. Metric
// output on stdout is byte-identical for every jobs value — only wall-clock
// and the stderr progress stream change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "sim/system.hpp"

namespace mb::bench {

/// Parse `--jobs=N` / `--jobs N` out of argv (consuming nothing else) and
/// resolve the default through sim::resolveJobs (MB_JOBS, then hardware
/// concurrency). Any unrecognized argument is rejected with exit 2.
int jobsFromArgs(int argc, char** argv);

/// Common bench arguments for grid benches that support cache warmup:
///   --jobs=N       worker pool (as jobsFromArgs)
///   --warmup=N     functional-warmup records per core before measurement
///                  (default: MB_WARMUP env, else 0 = no warmup)
///   --warmup-cold  replay the warmup per grid point instead of restoring
///                  the shared MBCKPT1 warmup snapshot (the slow reference
///                  path; results are bit-identical either way)
struct BenchArgs {
  int jobs = 0;
  std::int64_t warmup = 0;
  bool warmupCold = false;
};
BenchArgs parseBenchArgs(int argc, char** argv);

/// Print the standard bench banner.
void printBanner(const std::string& artifact, const std::string& what);

/// 64-core, 16-channel configuration for multiprogrammed / multithreaded
/// workloads (paper §VI-A); honors the PHY's channel limit.
sim::SystemConfig multicoreConfig(sim::SystemConfig base);

/// Apply the slice preset from MB_SLICE to single- or multi-core configs.
sim::SystemConfig sliced(sim::SystemConfig cfg, bool multicore);

/// Batches every (workload, config) cell of a bench into one flat point
/// list, runs it through sim::SweepRunner, and hands each cell its results
/// back in submission order. Flattening matters: a 5x5 grid of spec-high
/// cells is 250 independent single-app simulations, and one shared pool
/// keeps every worker busy across cell boundaries instead of paying a
/// serial barrier per cell.
class SweepPlan {
 public:
  /// Queue one workload/config cell (workload names as in runWorkload()).
  /// Returns the cell id to pass to results() after run().
  std::size_t add(const std::string& workload, const sim::SystemConfig& cfg);

  /// Warm each point's caches with `records` functional trace records per
  /// core before its timed run. With `reuseSnapshots` (the default), the
  /// warmup runs ONCE per distinct warmup key (workload + seed + processor
  /// shape — see sim::warmupKeyHash) and every grid point restores the
  /// shared MBCKPT1 snapshot; the cold path replays the warmup inside every
  /// point. Both paths produce bit-identical results; reuse just removes
  /// the per-point replay from a grid that shares one workload.
  void enableWarmup(std::int64_t records, bool reuseSnapshots = true);

  /// Run all queued cells with `jobs` workers (<= 0: MB_JOBS / hardware
  /// concurrency). If any point fails, every failure is reported on stderr
  /// before the process aborts — one bad point no longer hides the others.
  void run(int jobs);

  /// Per-constituent results of a cell, in the same order runWorkload()
  /// would return them. Valid after run().
  const std::vector<sim::RunResult>& results(std::size_t cell) const;

 private:
  struct Cell {
    std::size_t firstPoint = 0;
    std::size_t numPoints = 0;
    std::vector<sim::RunResult> results;
  };
  std::vector<sim::SweepPoint> points_;
  std::vector<Cell> cells_;
  std::int64_t warmupRecords_ = 0;
  bool warmupReuse_ = true;
  /// Warmup key -> encoded snapshot; node-stable so points_ can hold
  /// pointers into the mapped strings across run().
  std::map<std::uint64_t, std::string> warmupSnaps_;
  bool ran_ = false;
};

/// Run a named workload:
///   - a SPEC app name ("429.mcf"): single core, single channel;
///   - "spec-high"/"spec-med"/"spec-low"/"spec-all": per-app runs, averaged
///     as ratios by the caller (returns all apps' results);
///   - "mix-high"/"mix-blend": 64-core multiprogrammed;
///   - "RADIX"/"FFT"/"canneal"/"TPC-C"/"TPC-H": 64-thread kernels.
/// Returns one result per constituent run. Group members run concurrently
/// (`jobs` as in SweepPlan::run; the no-jobs overload uses the default).
std::vector<sim::RunResult> runWorkload(const std::string& name,
                                        const sim::SystemConfig& cfg);
std::vector<sim::RunResult> runWorkload(const std::string& name,
                                        const sim::SystemConfig& cfg, int jobs);

/// Mean metric ratio of `test` over `baseline` (paired per constituent).
double relative(const std::vector<sim::RunResult>& test,
                const std::vector<sim::RunResult>& baseline,
                double (*metric)(const sim::RunResult&));

inline double ipcMetric(const sim::RunResult& r) { return r.systemIpc; }
inline double invEdpMetric(const sim::RunResult& r) { return r.invEdp; }

/// Aggregate power breakdown (watts) over a workload's runs.
struct PowerBreakdownW {
  double processor = 0, actPre = 0, dramStatic = 0, rdwr = 0, io = 0;
  double total() const { return processor + actPre + dramStatic + rdwr + io; }
};
PowerBreakdownW powerBreakdown(const std::vector<sim::RunResult>& runs);

/// Mean of a scalar across runs.
double meanOf(const std::vector<sim::RunResult>& runs,
              double (*metric)(const sim::RunResult&));

}  // namespace mb::bench
