#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>

#include "common/check.hpp"

namespace mb::bench {

namespace {

std::int64_t positiveIntArg(const char* flag, const char* value) {
  char* end = nullptr;
  const long long v = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || v < 1) {
    std::fprintf(stderr, "%s expects a positive integer, got \"%s\"\n", flag, value);
    std::exit(2);
  }
  return v;
}

}  // namespace

int jobsFromArgs(int argc, char** argv) {
  int jobs = 0;  // 0: let resolveJobs pick MB_JOBS / hardware concurrency
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      value = arg + 7;
    } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      value = argv[++i];
    } else {
      std::fprintf(stderr, "unrecognized argument: %s (benches take --jobs N)\n",
                   arg);
      std::exit(2);
    }
    jobs = static_cast<int>(positiveIntArg("--jobs", value));
  }
  return sim::resolveJobs(jobs);
}

BenchArgs parseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  if (const char* env = std::getenv("MB_WARMUP"))
    args.warmup = positiveIntArg("MB_WARMUP", env);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      args.jobs = static_cast<int>(positiveIntArg("--jobs", arg + 7));
    } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      args.jobs = static_cast<int>(positiveIntArg("--jobs", argv[++i]));
    } else if (std::strncmp(arg, "--warmup=", 9) == 0) {
      args.warmup = positiveIntArg("--warmup", arg + 9);
    } else if (std::strcmp(arg, "--warmup-cold") == 0) {
      args.warmupCold = true;
    } else {
      std::fprintf(stderr,
                   "unrecognized argument: %s (this bench takes --jobs N, "
                   "--warmup N, --warmup-cold)\n",
                   arg);
      std::exit(2);
    }
  }
  args.jobs = sim::resolveJobs(args.jobs);
  return args;
}

void printBanner(const std::string& artifact, const std::string& what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), what.c_str());
  std::printf("slice preset: %s (set MB_SLICE=full for long runs)\n",
              sim::slicePresetFromEnv() == sim::SlicePreset::Full ? "full" : "fast");
  std::printf("================================================================\n");
}

sim::SystemConfig multicoreConfig(sim::SystemConfig base) {
  const auto phy = interface::PhyModel::make(base.phy);
  base.hier.numCores = 64;
  base.hier.coresPerCluster = 4;
  base.channels = phy.channels;  // 16, or 8 for the pin-limited DDR3-PCB
  return base;
}

sim::SystemConfig sliced(sim::SystemConfig cfg, bool multicore) {
  sim::applySlice(cfg, sim::slicePresetFromEnv(), multicore);
  return cfg;
}

namespace {

/// Expand a named workload into its constituent sweep points (one per
/// single-app slice run, or one multicore run for mixes/kernels), applying
/// the same slicing rules the serial path used.
std::vector<sim::SweepPoint> workloadPoints(const std::string& name,
                                            const sim::SystemConfig& cfg) {
  using trace::SpecGroup;
  auto groupPoints = [&](const std::vector<std::string>& apps) {
    const auto c = sliced(cfg, false);
    std::vector<sim::SweepPoint> pts;
    pts.reserve(apps.size());
    for (const auto& app : apps)
      pts.push_back({name + "/" + app, c, sim::WorkloadSpec::spec(app)});
    return pts;
  };

  if (name == "spec-high") return groupPoints(trace::specGroupMembers(SpecGroup::High));
  if (name == "spec-med") return groupPoints(trace::specGroupMembers(SpecGroup::Med));
  if (name == "spec-low") return groupPoints(trace::specGroupMembers(SpecGroup::Low));
  if (name == "spec-all") {
    std::vector<std::string> all;
    for (const auto& p : trace::specProfiles()) all.push_back(p.name);
    return groupPoints(all);
  }
  if (name == "mix-high" || name == "mix-blend") {
    return {{name, sliced(multicoreConfig(cfg), true), sim::WorkloadSpec::mix(name)}};
  }
  for (auto kind : {trace::MtKind::Radix, trace::MtKind::Fft, trace::MtKind::Canneal,
                    trace::MtKind::TpcC, trace::MtKind::TpcH}) {
    if (name == trace::mtKindName(kind)) {
      return {{name, sliced(multicoreConfig(cfg), true), sim::WorkloadSpec::mt(kind)}};
    }
  }
  // Single SPEC application.
  return {{name, sliced(cfg, false), sim::WorkloadSpec::spec(name)}};
}

}  // namespace

std::size_t SweepPlan::add(const std::string& workload, const sim::SystemConfig& cfg) {
  MB_CHECK(!ran_);
  auto pts = workloadPoints(workload, cfg);
  Cell cell;
  cell.firstPoint = points_.size();
  cell.numPoints = pts.size();
  for (auto& p : pts) points_.push_back(std::move(p));
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

void SweepPlan::enableWarmup(std::int64_t records, bool reuseSnapshots) {
  MB_CHECK(!ran_ && records > 0);
  warmupRecords_ = records;
  warmupReuse_ = reuseSnapshots;
}

void SweepPlan::run(int jobs) {
  MB_CHECK(!ran_);
  if (warmupRecords_ > 0) {
    std::size_t captured = 0;
    for (auto& p : points_) {
      p.opts.warmupRecords = warmupRecords_;
      if (!warmupReuse_) continue;
      const std::uint64_t key =
          sim::warmupKeyHash(p.cfg, p.workload, warmupRecords_);
      auto it = warmupSnaps_.find(key);
      if (it == warmupSnaps_.end()) {
        // First point with this (workload, seed, processor shape): run the
        // functional warmup once and snapshot it. Every other grid point
        // sharing the key restores the snapshot instead of replaying.
        it = warmupSnaps_
                 .emplace(key, sim::captureWarmupSnapshot(p.cfg, p.workload,
                                                          warmupRecords_))
                 .first;
        ++captured;
      }
      p.opts.warmupRestoreBuf = &it->second;
    }
    if (warmupReuse_)
      std::fprintf(stderr,
                   "[sweep] warmup: %lld records/core, %zu snapshots shared "
                   "across %zu points\n",
                   static_cast<long long>(warmupRecords_), captured,
                   points_.size());
  }
  sim::SweepOptions opts;
  opts.jobs = jobs;
  opts.progress = true;
  auto results = sim::SweepRunner(opts).runAll(points_);
  for (auto& cell : cells_) {
    cell.results.assign(
        std::make_move_iterator(results.begin() + static_cast<std::ptrdiff_t>(cell.firstPoint)),
        std::make_move_iterator(results.begin() +
                                static_cast<std::ptrdiff_t>(cell.firstPoint + cell.numPoints)));
  }
  ran_ = true;
}

const std::vector<sim::RunResult>& SweepPlan::results(std::size_t cell) const {
  MB_CHECK(ran_ && cell < cells_.size());
  return cells_[cell].results;
}

std::vector<sim::RunResult> runWorkload(const std::string& name,
                                        const sim::SystemConfig& cfg) {
  return runWorkload(name, cfg, 0);
}

std::vector<sim::RunResult> runWorkload(const std::string& name,
                                        const sim::SystemConfig& cfg, int jobs) {
  sim::SweepOptions opts;
  opts.jobs = jobs;
  return sim::SweepRunner(opts).runAll(workloadPoints(name, cfg));
}

double relative(const std::vector<sim::RunResult>& test,
                const std::vector<sim::RunResult>& baseline,
                double (*metric)(const sim::RunResult&)) {
  return sim::meanRatio(test, baseline, metric);
}

PowerBreakdownW powerBreakdown(const std::vector<sim::RunResult>& runs) {
  PowerBreakdownW p;
  for (const auto& r : runs) {
    const double secPj = toSeconds(r.elapsed) * 1e12;  // pJ -> W divisor
    if (secPj <= 0) continue;
    p.processor += r.energy.processor / secPj;
    p.actPre += r.energy.dramActPre / secPj;
    p.dramStatic += r.energy.dramStatic / secPj;
    p.rdwr += r.energy.dramRdWr / secPj;
    p.io += r.energy.io / secPj;
  }
  const auto n = static_cast<double>(runs.size());
  p.processor /= n;
  p.actPre /= n;
  p.dramStatic /= n;
  p.rdwr /= n;
  p.io /= n;
  return p;
}

double meanOf(const std::vector<sim::RunResult>& runs,
              double (*metric)(const sim::RunResult&)) {
  double sum = 0.0;
  for (const auto& r : runs) sum += metric(r);
  return sum / static_cast<double>(runs.size());
}

}  // namespace mb::bench
