#include "bench_util.hpp"

#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace mb::bench {

void printBanner(const std::string& artifact, const std::string& what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), what.c_str());
  std::printf("slice preset: %s (set MB_SLICE=full for long runs)\n",
              sim::slicePresetFromEnv() == sim::SlicePreset::Full ? "full" : "fast");
  std::printf("================================================================\n");
}

sim::SystemConfig multicoreConfig(sim::SystemConfig base) {
  const auto phy = interface::PhyModel::make(base.phy);
  base.hier.numCores = 64;
  base.hier.coresPerCluster = 4;
  base.channels = phy.channels;  // 16, or 8 for the pin-limited DDR3-PCB
  return base;
}

sim::SystemConfig sliced(sim::SystemConfig cfg, bool multicore) {
  sim::applySlice(cfg, sim::slicePresetFromEnv(), multicore);
  return cfg;
}

std::vector<sim::RunResult> runWorkload(const std::string& name,
                                        const sim::SystemConfig& cfg) {
  using trace::SpecGroup;
  auto runGroup = [&](std::vector<std::string> apps) {
    // Each simulation is fully self-contained (its own event queue, device
    // state, and seeded generators), so group members run concurrently —
    // results are bitwise identical to a serial run, just wall-clock faster.
    const auto c = sliced(cfg, false);
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<sim::RunResult> out(apps.size());
    size_t next = 0;
    while (next < apps.size()) {
      const size_t batch = std::min<size_t>(hw, apps.size() - next);
      std::vector<std::future<sim::RunResult>> futs;
      futs.reserve(batch);
      for (size_t i = 0; i < batch; ++i) {
        futs.push_back(std::async(std::launch::async,
                                  [&c, app = apps[next + i]] {
                                    return sim::runSpecApp(app, c);
                                  }));
      }
      for (size_t i = 0; i < batch; ++i) out[next + i] = futs[i].get();
      next += batch;
    }
    return out;
  };

  if (name == "spec-high") return runGroup(trace::specGroupMembers(SpecGroup::High));
  if (name == "spec-med") return runGroup(trace::specGroupMembers(SpecGroup::Med));
  if (name == "spec-low") return runGroup(trace::specGroupMembers(SpecGroup::Low));
  if (name == "spec-all") {
    std::vector<std::string> all;
    for (const auto& p : trace::specProfiles()) all.push_back(p.name);
    return runGroup(all);
  }
  if (name == "mix-high" || name == "mix-blend") {
    return {sim::runSimulation(sliced(multicoreConfig(cfg), true),
                               sim::WorkloadSpec::mix(name))};
  }
  for (auto kind : {trace::MtKind::Radix, trace::MtKind::Fft, trace::MtKind::Canneal,
                    trace::MtKind::TpcC, trace::MtKind::TpcH}) {
    if (name == trace::mtKindName(kind)) {
      return {sim::runSimulation(sliced(multicoreConfig(cfg), true),
                                 sim::WorkloadSpec::mt(kind))};
    }
  }
  // Single SPEC application.
  return {sim::runSpecApp(name, sliced(cfg, false))};
}

double relative(const std::vector<sim::RunResult>& test,
                const std::vector<sim::RunResult>& baseline,
                double (*metric)(const sim::RunResult&)) {
  MB_CHECK(test.size() == baseline.size() && !test.empty());
  double sum = 0.0;
  for (size_t i = 0; i < test.size(); ++i) {
    const double b = metric(baseline[i]);
    MB_CHECK(b > 0.0);
    sum += metric(test[i]) / b;
  }
  return sum / static_cast<double>(test.size());
}

PowerBreakdownW powerBreakdown(const std::vector<sim::RunResult>& runs) {
  PowerBreakdownW p;
  for (const auto& r : runs) {
    const double secPj = toSeconds(r.elapsed) * 1e12;  // pJ -> W divisor
    if (secPj <= 0) continue;
    p.processor += r.energy.processor / secPj;
    p.actPre += r.energy.dramActPre / secPj;
    p.dramStatic += r.energy.dramStatic / secPj;
    p.rdwr += r.energy.dramRdWr / secPj;
    p.io += r.energy.io / secPj;
  }
  const auto n = static_cast<double>(runs.size());
  p.processor /= n;
  p.actPre /= n;
  p.dramStatic /= n;
  p.rdwr /= n;
  p.io /= n;
  return p;
}

double meanOf(const std::vector<sim::RunResult>& runs,
              double (*metric)(const sim::RunResult&)) {
  double sum = 0.0;
  for (const auto& r : runs) sum += metric(r);
  return sum / static_cast<double>(runs.size());
}

}  // namespace mb::bench
