// Reproduces Table I: DRAM energy and timing parameters.
//
// These are model inputs, printed from the live parameter structs so any
// drift between the paper and the implementation is caught here (the same
// values are asserted in tests/dram/timing_test.cpp and energy_test.cpp).
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "dram/energy.hpp"
#include "dram/timing.hpp"

int main() {
  using namespace mb;
  bench::printBanner("Table I", "DRAM energy and timing parameters");

  {
    TablePrinter t({"Energy parameter", "value", "paper"});
    const auto pcb = dram::EnergyParams::ddr3Pcb();
    const auto lp = dram::EnergyParams::lpddrTsi();
    t.addRow({"I/O energy (DDR3-PCB)", formatDouble(pcb.ioPerBit, 0) + " pJ/b", "20 pJ/b"});
    t.addRow({"I/O energy (LPDDR-TSI)", formatDouble(lp.ioPerBit, 0) + " pJ/b", "4 pJ/b"});
    t.addRow({"RD/WR energy w/o I/O (DDR3-PCB)", formatDouble(pcb.rdwrPerBit, 0) + " pJ/b",
              "13 pJ/b"});
    t.addRow({"RD/WR energy w/o I/O (LPDDR-TSI)", formatDouble(lp.rdwrPerBit, 0) + " pJ/b",
              "4 pJ/b"});
    t.addRow({"ACT+PRE energy (8KB DRAM page)",
              formatDouble(lp.actPreFullRow / 1000.0, 0) + " nJ", "30 nJ"});
    t.print(std::cout);
  }
  std::printf("\n");
  {
    TablePrinter t({"Timing parameter", "symbol", "value", "paper"});
    const auto d = dram::TimingParams::ddr3();
    const auto s = dram::TimingParams::tsi();
    t.addRow({"Activate to read delay", "tRCD", formatDouble(toNs(d.tRCD), 0) + " ns",
              "14 ns"});
    t.addRow({"Read to first data (DDR3)", "tAA", formatDouble(toNs(d.tAA), 0) + " ns",
              "14 ns"});
    t.addRow({"Read to first data (TSI)", "tAA", formatDouble(toNs(s.tAA), 0) + " ns",
              "12 ns"});
    t.addRow({"Activate to precharge delay", "tRAS", formatDouble(toNs(d.tRAS), 0) + " ns",
              "35 ns"});
    t.addRow({"Precharge command period", "tRP", formatDouble(toNs(d.tRP), 0) + " ns",
              "14 ns"});
    t.print(std::cout);
  }
  std::printf(
      "\nSupplementary modelled parameters (DDR3-1600 class, not in Table I):\n"
      "  tRRD=%.0fns tFAW=%.0fns tWR=%.0fns tWTR=%.1fns tRTP=%.1fns\n"
      "  tREFI=%.1fus tRFC=%.0fns tBURST=%.0fns (64B @ 16GB/s) tCMD=%.2fns\n",
      toNs(dram::TimingParams::ddr3().tRRD), toNs(dram::TimingParams::ddr3().tFAW),
      toNs(dram::TimingParams::ddr3().tWR), toNs(dram::TimingParams::ddr3().tWTR),
      toNs(dram::TimingParams::ddr3().tRTP),
      toNs(dram::TimingParams::ddr3().tREFI) / 1000.0,
      toNs(dram::TimingParams::ddr3().tRFC), toNs(dram::TimingParams::ddr3().tBURST),
      toNs(dram::TimingParams::ddr3().tCMD));
  return 0;
}
