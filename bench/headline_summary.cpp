// Reproduces the paper's headline result (abstract / §I): the TSI-based
// μbank memory system improves IPC by 1.62x and 1/EDP by 4.80x over the
// baseline DDR3-PCB memory system, averaged over the memory-intensive third
// of SPEC CPU2006 (the spec-high group), using a low-area μbank
// configuration.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "dram/area_model.hpp"

int main() {
  using namespace mb;
  bench::printBanner("Headline", "TSI + ubank vs DDR3-PCB on spec-high");

  const auto baseline = bench::runWorkload("spec-high", sim::ddr3PcbConfig());

  TablePrinter t({"system", "rel IPC", "rel 1/EDP", "area overhead"});
  t.addRow({"DDR3-PCB (baseline)", "1.000", "1.000", "-"});

  {
    const auto tsi = bench::runWorkload("spec-high", sim::tsiBaselineConfig());
    t.addRow({"LPDDR-TSI, (1,1)",
              formatDouble(bench::relative(tsi, baseline, bench::ipcMetric), 3),
              formatDouble(bench::relative(tsi, baseline, bench::invEdpMetric), 3),
              "0.0%"});
  }
  dram::AreaModel area;
  for (const auto& c : sim::representativeConfigs()) {
    if (c.nW == 1 && c.nB == 1) continue;
    sim::SystemConfig cfg = sim::tsiBaselineConfig();
    cfg.ubank = dram::UbankConfig{c.nW, c.nB};
    const auto runs = bench::runWorkload("spec-high", cfg);
    t.addRow({"LPDDR-TSI + ubank " + c.label,
              formatDouble(bench::relative(runs, baseline, bench::ipcMetric), 3),
              formatDouble(bench::relative(runs, baseline, bench::invEdpMetric), 3),
              formatDouble(area.overhead({c.nW, c.nB}) * 100.0, 1) + "%"});
  }
  t.print(std::cout);
  std::printf("\npaper: IPC 1.62x and 1/EDP 4.80x on average for spec-high.\n");
  return 0;
}
