// Reproduces Fig. 12: relative IPC and 1/EDP of spec-all and spec-high as
// the page-management policy (open vs close) and the address-interleaving
// base bit iB vary, on the representative μbank configurations. The legal
// iB range shrinks with nW exactly as in the paper's x-axis: up to 13 for
// (1,1), 12 for (2,8), 11 for (4,4), 10 for (8,2). Everything is normalized
// to the paper's baseline: (1,1), open page, page interleaving (iB = 13).
//
// Paper shape: at (1,1) policy and iB barely matter (PAR-BS recovers
// locality from the queue); with μbanks, open-page + page interleaving
// clearly wins (up to ~17% over close on spec-high at (2,8)).
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace mb;
  bench::printBanner("Figure 12", "page policy x interleaving base bit sweep");

  const sim::SystemConfig baseCfg = sim::tsiBaselineConfig();  // (1,1), open, iB=13

  struct Config {
    int nW, nB;
    std::vector<int> baseBits;
  };
  const std::vector<Config> configs = {
      {1, 1, {6, 8, 10, 13}},
      {2, 8, {6, 8, 10, 12}},
      {4, 4, {6, 8, 11}},
      {8, 2, {6, 8, 10}},
  };

  for (const char* group : {"spec-all", "spec-high"}) {
    const auto baseline = bench::runWorkload(group, baseCfg);
    std::printf("--- %s (baseline: (1,1) open iB=13) ---\n", group);
    TablePrinter t({"(nW,nB)", "iB", "policy", "rel IPC", "rel 1/EDP"});
    for (const auto& c : configs) {
      for (int iB : c.baseBits) {
        for (auto policy : {core::PolicyKind::Open, core::PolicyKind::Close}) {
          sim::SystemConfig cfg = baseCfg;
          cfg.ubank = dram::UbankConfig{c.nW, c.nB};
          cfg.interleaveBaseBit = iB;
          cfg.pagePolicy = policy;
          const auto runs = bench::runWorkload(group, cfg);
          t.addRow({"(" + std::to_string(c.nW) + "," + std::to_string(c.nB) + ")",
                    std::to_string(iB), policy == core::PolicyKind::Open ? "O" : "C",
                    formatDouble(bench::relative(runs, baseline, bench::ipcMetric), 3),
                    formatDouble(bench::relative(runs, baseline, bench::invEdpMetric),
                                 3)});
        }
      }
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "paper anchors: open-page + max iB dominates once nW*nB > 1; the O-C\n"
      "gap at (1,1) is small; close-page prefers low iB.\n");
  return 0;
}
