// Extension study: permutation-based (XOR) bank-index hashing vs μbank.
//
// XOR-folding low row bits into the bank index is the classic *system-level*
// answer to bank conflicts: hot rows that would collide in one bank scatter
// across banks with no DRAM device change. μbank is the *device-level*
// answer: more row buffers per bank plus smaller (cheaper) rows. This
// ablation puts them side by side and in combination — hashing can recover
// some of μbank's conflict reduction, but none of its activation-energy
// savings, which is the paper's core point about TSI-based systems.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace mb;
  bench::printBanner("Extension", "XOR bank hashing vs ubank partitioning");

  struct System {
    const char* label;
    dram::UbankConfig ubank;
    bool hash;
  };
  const System systems[] = {
      {"(1,1) plain", {1, 1}, false},
      {"(1,1) + XOR hash", {1, 1}, true},
      {"(2,8) plain", {2, 8}, false},
      {"(2,8) + XOR hash", {2, 8}, true},
  };

  for (const char* workload : {"429.mcf", "spec-high", "TPC-H"}) {
    sim::SystemConfig baseCfg = sim::tsiBaselineConfig();
    const auto baseline = bench::runWorkload(workload, baseCfg);
    std::printf("--- %s (baseline (1,1) plain) ---\n", workload);
    TablePrinter t({"system", "rel IPC", "rel 1/EDP", "row hit", "ACT/PRE W"});
    for (const auto& s : systems) {
      sim::SystemConfig cfg = baseCfg;
      cfg.ubank = s.ubank;
      cfg.xorBankHash = s.hash;
      const auto runs = bench::runWorkload(workload, cfg);
      const auto p = bench::powerBreakdown(runs);
      t.addRow(s.label,
               {bench::relative(runs, baseline, bench::ipcMetric),
                bench::relative(runs, baseline, bench::invEdpMetric),
                bench::meanOf(runs, +[](const sim::RunResult& r) { return r.rowHitRate; }),
                p.actPre},
               3);
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "expected: hashing narrows the IPC gap on conflict-bound workloads but\n"
      "leaves ACT/PRE power untouched, so ubank keeps its EDP advantage.\n");
  return 0;
}
