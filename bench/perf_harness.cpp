// mbperf — host-performance harness for the simulator itself.
//
// Runs every shipped preset for a fixed instruction slice and reports how
// fast the ENGINE executes: wall seconds, dispatched events/sec, simulated
// core-cycles/sec, and RSS, per preset and in aggregate, as both a stdout
// table and a machine-readable BENCH_PERF.json (format MBPERF1). Per-preset
// `peakRssKiB` is the DELTA of the process peak-RSS high-water mark across
// that preset's runs (not the inherited absolute peak); the totals block
// carries the process-wide peak. See bench/perf_report.hpp.
// tools/ci.sh records it on every gate run (non-gating) so the throughput
// trajectory of the event engine and MC arbitration loop is visible PR over
// PR; bench/perf_baseline.txt pins the last accepted events/sec per preset
// and --baseline diffs against it with a generous machine-noise tolerance.
//
//   mbperf [--out=BENCH_PERF.json] [--workload=429.mcf] [--instrs=N]
//          [--repeat=N] [--preset=NAME] [--baseline=FILE] [--tolerance=0.25]
//          [--update-baseline=FILE]
//
// Timing methodology: each preset runs `repeat` times and the FASTEST run is
// reported (minimum wall time estimates the cost floor; means absorb
// scheduler noise from the host). Simulation output is deterministic, so
// repeats are free of variance in work done. Baseline diffs are warn-only:
// perf regressions should be loud in CI logs but a shared, throttled, or
// slow host must not fail the gate.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/perf_report.hpp"
#include "common/version.hpp"
#include "serve/result_cache.hpp"
#include "serve/snapshot_lru.hpp"
#include "sim/experiment.hpp"
#include "sim/journal.hpp"

namespace {

using namespace mb;
using bench::PresetPerf;
using bench::ServePerf;
using bench::ShardPerf;
using bench::currentPeakRssKiB;

struct Options {
  std::string out = "BENCH_PERF.json";
  std::string workload = "429.mcf";
  std::int64_t instrs = 10000;
  int repeat = 3;
  std::string presetFilter;     // empty = all
  std::string baselinePath;     // diff against this (warn-only)
  std::string updateBaseline;   // write events/sec table here
  double tolerance = 0.25;
  bool serve = false;           // measure the mbserve memo/LRU path too
  int shardBench = 0;           // >0: measure --shards=N vs serial too
};

[[noreturn]] void usageError(const std::string& msg) {
  std::fprintf(stderr, "mbperf: %s\n", msg.c_str());
  std::fprintf(stderr,
               "usage: mbperf [--out=FILE] [--workload=NAME] [--instrs=N] "
               "[--repeat=N]\n              [--preset=NAME] [--baseline=FILE] "
               "[--tolerance=FRAC] [--update-baseline=FILE]\n"
               "              [--serve] [--shard-bench[=N]]\n");
  std::exit(2);
}

Options parseArgs(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* flag) -> std::string {
      return a.substr(std::strlen(flag));
    };
    if (a.rfind("--out=", 0) == 0) {
      o.out = val("--out=");
    } else if (a.rfind("--workload=", 0) == 0) {
      o.workload = val("--workload=");
    } else if (a.rfind("--instrs=", 0) == 0) {
      o.instrs = std::atoll(val("--instrs=").c_str());
      if (o.instrs <= 0) usageError("--instrs must be positive");
    } else if (a.rfind("--repeat=", 0) == 0) {
      o.repeat = std::atoi(val("--repeat=").c_str());
      if (o.repeat <= 0) usageError("--repeat must be positive");
    } else if (a.rfind("--preset=", 0) == 0) {
      o.presetFilter = val("--preset=");
    } else if (a.rfind("--baseline=", 0) == 0) {
      o.baselinePath = val("--baseline=");
    } else if (a.rfind("--update-baseline=", 0) == 0) {
      o.updateBaseline = val("--update-baseline=");
    } else if (a.rfind("--tolerance=", 0) == 0) {
      o.tolerance = std::atof(val("--tolerance=").c_str());
      if (o.tolerance <= 0.0) usageError("--tolerance must be positive");
    } else if (a == "--serve") {
      o.serve = true;
    } else if (a == "--shard-bench") {
      o.shardBench = 4;
    } else if (a.rfind("--shard-bench=", 0) == 0) {
      o.shardBench = std::atoi(val("--shard-bench=").c_str());
      if (o.shardBench < 2) usageError("--shard-bench needs at least 2 shards");
    } else {
      usageError("unknown argument: " + a);
    }
  }
  return o;
}

PresetPerf measure(const sim::NamedConfig& preset, const Options& o) {
  sim::SystemConfig cfg = preset.cfg;
  cfg.core.maxInstrs = o.instrs;

  PresetPerf p;
  p.preset = preset.name;
  // ru_maxrss is a process-lifetime high-water mark; sample it before the
  // runs and report the delta so this preset's value never inherits an
  // earlier preset's peak (bench/perf_report.hpp has the full semantics).
  const long rssBefore = currentPeakRssKiB();
  double bestWall = 0.0;
  for (int rep = 0; rep < o.repeat; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const sim::RunResult r = sim::runSpecApp(o.workload, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || wall < bestWall) {
      bestWall = wall;
      p.events = r.eventsProcessed;
      const double simCycles =
          static_cast<double>(r.elapsed) / static_cast<double>(cfg.core.cyclePs);
      p.simulatedCyclesPerSec = wall > 0.0 ? simCycles / wall : 0.0;
    }
  }
  p.wallSeconds = bestWall;
  p.eventsPerSec =
      bestWall > 0.0 ? static_cast<double>(p.events) / bestWall : 0.0;
  p.peakRssKiB = currentPeakRssKiB() - rssBefore;
  return p;
}

/// Serve-path measurement: how much the mbserve memo cache and the
/// warmup-snapshot LRU buy on this host, on the baseline preset. Cold is the
/// exact daemon miss path (simulate + serialize + store); cached is the memo
/// lookup returning the same bytes. Both are best-of-`repeat` like the
/// preset table. The LRU exercise pays the warmup capture once and then
/// re-acquires, mirroring a sweep grid sharing one snapshot.
ServePerf measureServe(const Options& o) {
  sim::SystemConfig cfg = sim::tsiBaselineConfig();
  cfg.core.maxInstrs = o.instrs;
  const auto wl = sim::WorkloadSpec::spec(o.workload);
  const std::uint64_t key = serve::ResultCache::resultKey(
      sim::systemConfigHash(cfg, wl), wl.name, cfg.seed, 0, versionString());

  const std::string dir = o.out + ".serve-cache";
  serve::ResultCache cache(dir);
  if (!cache.ok()) {
    std::fprintf(stderr, "mbperf: cannot create serve cache dir %s\n",
                 dir.c_str());
    std::exit(1);
  }
  cache.flush();

  ServePerf s;
  std::string cold;
  for (int rep = 0; rep < o.repeat; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    cold = sim::runResultToJson(sim::runSimulation(cfg, wl));
    cache.store(key, cold);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || wall < s.coldSeconds) s.coldSeconds = wall;
  }
  for (int rep = 0; rep < o.repeat; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto served = cache.lookup(key);
    const auto t1 = std::chrono::steady_clock::now();
    if (!served || *served != cold) {
      std::fprintf(stderr,
                   "mbperf: serve cache returned wrong bytes — memo path is "
                   "broken\n");
      std::exit(1);
    }
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || wall < s.cachedSeconds) s.cachedSeconds = wall;
  }
  cache.flush();
  std::remove(dir.c_str());

  // Snapshot LRU: one generation, `repeat` re-acquires from the same key —
  // the shape of a grid query warming each workload exactly once.
  constexpr std::int64_t kWarm = 2000;
  serve::SnapshotLru lru(256u << 20);
  const std::uint64_t wkey = sim::warmupKeyHash(cfg, wl, kWarm);
  for (int rep = 0; rep < o.repeat + 1; ++rep)
    lru.acquire(wkey, [&] { return sim::captureWarmupSnapshot(cfg, wl, kWarm); })
        .release();
  const auto lruStats = lru.stats();
  s.lruHits = lruStats.hits;
  s.lruMisses = lruStats.misses;
  return s;
}

/// Sharded-engine measurement (DESIGN.md §14): the tsi-baseline preset under
/// the multicore RADIX workload — the fig.8 configuration, where all 16
/// channels carry traffic — timed at --shards=1 and --shards=N with
/// best-of-`repeat` walls. Outputs are byte-identical by construction (the
/// ShardDifferential tests gate that), so the two runs do exactly the same
/// simulation work and the wall ratio isolates the engine. The ratio only
/// means something relative to the host's hardware thread count, which is
/// recorded alongside: with fewer free cores than workers the barrier
/// crossings are pure overhead and a ratio below 1 is expected, not a
/// regression — hence warn-only, like every other mbperf comparison.
ShardPerf measureShard(const Options& o) {
  sim::SystemConfig cfg = sim::tsiBaselineConfig();
  cfg.core.maxInstrs = o.instrs;
  cfg.hier.numCores = 64;
  cfg.hier.coresPerCluster = 4;
  const auto wl = sim::WorkloadSpec::mt(trace::MtKind::Radix);

  ShardPerf s;
  s.shards = o.shardBench;
  s.channels = sim::resolvedChannels(cfg, wl);
  s.hardwareThreads = std::thread::hardware_concurrency();
  for (int pass = 0; pass < 2; ++pass) {
    sim::RunOptions ro;
    ro.shards = pass == 0 ? 1 : o.shardBench;
    double best = 0.0;
    for (int rep = 0; rep < o.repeat; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const sim::RunResult r = sim::runSimulation(cfg, wl, ro);
      const auto t1 = std::chrono::steady_clock::now();
      const double wall = std::chrono::duration<double>(t1 - t0).count();
      if (rep == 0 || wall < best) best = wall;
      s.events = r.eventsProcessed;  // identical across shard counts
    }
    (pass == 0 ? s.serialSeconds : s.shardedSeconds) = best;
  }
  return s;
}

void writeJson(const std::vector<PresetPerf>& perfs, const Options& o,
               const ServePerf* serve, const ShardPerf* shard) {
  std::ofstream out(o.out, std::ios::trunc);
  if (!out.good()) {
    std::fprintf(stderr, "mbperf: cannot write %s\n", o.out.c_str());
    std::exit(1);
  }
  out << bench::perfJson(perfs, {o.workload, o.instrs, o.repeat},
                         currentPeakRssKiB(), serve, shard);
}

std::map<std::string, double> readBaseline(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "mbperf: WARN cannot read baseline %s\n", path.c_str());
    return {};
  }
  return bench::readBaseline(in);
}

// Warn-only comparison: a slower-than-tolerance preset is flagged loudly but
// never fails the run — CI hosts are shared and noisy. Returns the number of
// flagged presets so callers that WANT to gate can.
int diffBaseline(const std::vector<PresetPerf>& perfs, const Options& o) {
  const auto base = readBaseline(o.baselinePath);
  if (base.empty()) return 0;
  int flagged = 0;
  for (const auto& p : perfs) {
    const auto it = base.find(p.preset);
    if (it == base.end()) {
      std::printf("perf-diff %-34s NEW (no baseline entry)\n", p.preset.c_str());
      continue;
    }
    const double ratio = it->second > 0.0 ? p.eventsPerSec / it->second : 0.0;
    if (ratio < 1.0 - o.tolerance) {
      ++flagged;
      std::printf(
          "perf-diff %-34s WARN %.2fx baseline (%.3g vs %.3g events/s, "
          "tolerance %.0f%%)\n",
          p.preset.c_str(), ratio, p.eventsPerSec, it->second,
          o.tolerance * 100.0);
    } else if (ratio > 1.0 + o.tolerance) {
      std::printf(
          "perf-diff %-34s NOTE %.2fx baseline — consider refreshing "
          "bench/perf_baseline.txt\n",
          p.preset.c_str(), ratio);
    } else {
      std::printf("perf-diff %-34s ok %.2fx baseline\n", p.preset.c_str(), ratio);
    }
  }
  return flagged;
}

void writeBaseline(const std::vector<PresetPerf>& perfs, const Options& o) {
  std::ofstream out(o.updateBaseline, std::ios::trunc);
  if (!out.good()) {
    std::fprintf(stderr, "mbperf: cannot write %s\n", o.updateBaseline.c_str());
    std::exit(1);
  }
  out << "# mbperf events/sec baseline (workload=" << o.workload
      << " instrs=" << o.instrs << ").\n"
      << "# Regenerate on a quiet host: mbperf --update-baseline=bench/"
         "perf_baseline.txt\n";
  for (const auto& p : perfs)
    out << p.preset << ' ' << bench::fmtG(p.eventsPerSec) << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parseArgs(argc, argv);

  std::vector<PresetPerf> perfs;
  std::printf("mbperf: workload=%s instrs=%lld repeat=%d (best-of)\n",
              o.workload.c_str(), static_cast<long long>(o.instrs), o.repeat);
  std::printf("%-34s %10s %12s %14s %16s %10s\n", "preset", "wall-s", "events",
              "events/s", "sim-cycles/s", "rss-KiB");
  bool matched = false;
  for (const auto& preset : sim::shippedPresets()) {
    if (!o.presetFilter.empty() && preset.name != o.presetFilter) continue;
    matched = true;
    const PresetPerf p = measure(preset, o);
    std::printf("%-34s %10.4f %12llu %14.4g %16.4g %10ld\n", p.preset.c_str(),
                p.wallSeconds, static_cast<unsigned long long>(p.events),
                p.eventsPerSec, p.simulatedCyclesPerSec, p.peakRssKiB);
    perfs.push_back(p);
  }
  if (!matched) usageError("--preset matched no shipped preset");

  ServePerf servePerf;
  if (o.serve) {
    servePerf = measureServe(o);
    std::printf(
        "serve: cold %.4fs cached %.3gs (%.0fx) lru %lld hit / %lld miss\n",
        servePerf.coldSeconds, servePerf.cachedSeconds,
        servePerf.cachedSeconds > 0.0
            ? servePerf.coldSeconds / servePerf.cachedSeconds
            : 0.0,
        static_cast<long long>(servePerf.lruHits),
        static_cast<long long>(servePerf.lruMisses));
  }
  ShardPerf shardPerf;
  if (o.shardBench > 0) {
    shardPerf = measureShard(o);
    const double speedup = shardPerf.shardedSeconds > 0.0
                               ? shardPerf.serialSeconds / shardPerf.shardedSeconds
                               : 0.0;
    std::printf(
        "shard: serial %.4fs --shards=%d %.4fs (%.2fx) over %d channels, "
        "%u hardware threads\n",
        shardPerf.serialSeconds, shardPerf.shards, shardPerf.shardedSeconds,
        speedup, shardPerf.channels, shardPerf.hardwareThreads);
    if (speedup < 1.0 &&
        shardPerf.hardwareThreads <= static_cast<unsigned>(shardPerf.shards))
      std::printf(
          "shard: NOTE only %u hardware threads for %d workers — parallel "
          "speedup needs free cores; ratio reflects the host, not the engine\n",
          shardPerf.hardwareThreads, shardPerf.shards);
  }
  writeJson(perfs, o, o.serve ? &servePerf : nullptr,
            o.shardBench > 0 ? &shardPerf : nullptr);
  std::printf("wrote %s\n", o.out.c_str());
  if (!o.updateBaseline.empty()) {
    writeBaseline(perfs, o);
    std::printf("wrote baseline %s\n", o.updateBaseline.c_str());
  }
  if (!o.baselinePath.empty()) diffBaseline(perfs, o);
  return 0;
}
